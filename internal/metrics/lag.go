package metrics

import (
	"repro/internal/model"
)

// ReplicaLag measures how far a replica's installed state trails the
// update stream it imports from its primary, under the paper's two
// staleness criteria at once:
//
//   - MA (maximum age, §2): per object, the span in seconds between
//     the newest generation *received* from the primary and the newest
//     generation *installed* locally. The aggregate is the maximum
//     over all objects — the age of the most out-of-date view.
//   - UU (unapplied update, §2): per object, the count of replicated
//     updates received but not yet installed; the aggregate is their
//     sum — the replica's install backlog.
//
// The tracker follows the same Received/Removed/Installed protocol as
// the simulator's staleness Trackers in this package, so the replica
// scheduler reports queue events once and both criteria stay
// consistent. It is not safe for concurrent use; the strip database
// calls it under its registry lock.
//
// Removal accounting is conservative: a Removed for an object with no
// pending count is ignored (the clamp absorbs mixed local/replicated
// feeds, where a queue drop cannot always be attributed exactly).
type ReplicaLag struct {
	pending  []int     // received-but-not-installed per object
	received []float64 // newest generation received (seconds)
	applied  []float64 // newest generation installed (seconds)
	seen     []bool    // object has received at least one update
	total    int       // sum of pending
}

// NewReplicaLag returns an empty tracker; objects are added on first
// use, so the replica needs no view count up front.
func NewReplicaLag() *ReplicaLag { return &ReplicaLag{} }

// ensure grows the per-object state to include obj.
func (l *ReplicaLag) ensure(obj model.ObjectID) {
	for len(l.pending) <= int(obj) {
		l.pending = append(l.pending, 0)
		l.received = append(l.received, 0)
		l.applied = append(l.applied, 0)
		l.seen = append(l.seen, false)
	}
}

// Received records a replicated update for obj with the given
// generation time entering the replica.
func (l *ReplicaLag) Received(obj model.ObjectID, gen float64) {
	l.ensure(obj)
	if !l.seen[obj] || gen > l.received[obj] {
		l.received[obj] = gen
	}
	l.seen[obj] = true
	l.pending[obj]++
	l.total++
}

// Removed records a replicated update for obj leaving the replica's
// queue unapplied (coalesced, expired, evicted or superseded). Under
// MA the object stays lagged until a newer generation installs,
// matching the strict-UU reasoning in §2.
func (l *ReplicaLag) Removed(obj model.ObjectID) {
	l.ensure(obj)
	if l.pending[obj] > 0 {
		l.pending[obj]--
		l.total--
	}
}

// Installed records a replicated update for obj with the given
// generation time being written into the replica's view.
func (l *ReplicaLag) Installed(obj model.ObjectID, gen float64) {
	l.ensure(obj)
	if gen > l.applied[obj] {
		l.applied[obj] = gen
	}
	if l.pending[obj] > 0 {
		l.pending[obj]--
		l.total--
	}
}

// Refreshed records a *local* (non-replicated) install for obj with
// the given generation time. It advances the applied generation — a
// local value newer than everything received leaves the object fresh
// under MA — without touching the pending count, which only counts
// replicated updates.
func (l *ReplicaLag) Refreshed(obj model.ObjectID, gen float64) {
	l.ensure(obj)
	if gen > l.applied[obj] {
		l.applied[obj] = gen
	}
}

// Object returns one object's lag: MA seconds (newest received minus
// newest installed generation, zero when caught up) and UU pending
// count. Unknown objects report zero lag.
func (l *ReplicaLag) Object(obj model.ObjectID) (maSeconds float64, uu int) {
	if int(obj) >= len(l.pending) || int(obj) < 0 {
		return 0, 0
	}
	return l.objectMA(int(obj)), l.pending[obj]
}

// objectMA computes the MA lag for one known object index.
func (l *ReplicaLag) objectMA(i int) float64 {
	if !l.seen[i] {
		return 0
	}
	if d := l.received[i] - l.applied[i]; d > 0 {
		return d
	}
	return 0
}

// Aggregate returns the replica-wide lag: the maximum MA seconds over
// all objects and the total UU backlog.
func (l *ReplicaLag) Aggregate() (maSeconds float64, uu int) {
	for i := range l.pending {
		if d := l.objectMA(i); d > maSeconds {
			maSeconds = d
		}
	}
	return maSeconds, l.total
}

// Objects returns the number of objects the tracker has seen.
func (l *ReplicaLag) Objects() int { return len(l.pending) }
