package metrics

import (
	"testing"

	"repro/internal/model"
)

func TestReplicaLagMAAndUU(t *testing.T) {
	l := NewReplicaLag()

	// Nothing seen: zero lag everywhere.
	if ma, uu := l.Aggregate(); ma != 0 || uu != 0 {
		t.Fatalf("empty tracker lag = %v, %d", ma, uu)
	}
	if ma, uu := l.Object(7); ma != 0 || uu != 0 {
		t.Fatalf("unknown object lag = %v, %d", ma, uu)
	}

	// Two updates received for object 0, none installed: UU 2, MA is
	// receivedGen - appliedGen(0) = 12.
	l.Received(0, 10)
	l.Received(0, 12)
	if ma, uu := l.Object(0); ma != 12 || uu != 2 {
		t.Fatalf("object 0 lag = %v, %d, want 12, 2", ma, uu)
	}

	// Install the older generation: backlog shrinks, MA narrows.
	l.Installed(0, 10)
	if ma, uu := l.Object(0); ma != 2 || uu != 1 {
		t.Fatalf("after partial install lag = %v, %d, want 2, 1", ma, uu)
	}

	// Install the newest: caught up.
	l.Installed(0, 12)
	if ma, uu := l.Object(0); ma != 0 || uu != 0 {
		t.Fatalf("after full install lag = %v, %d, want 0, 0", ma, uu)
	}

	// A second object contributes to the aggregate max.
	l.Received(3, 100)
	l.Received(0, 13)
	if ma, uu := l.Aggregate(); ma != 100 || uu != 2 {
		t.Fatalf("aggregate = %v, %d, want 100, 2", ma, uu)
	}
	if l.Objects() != 4 {
		t.Fatalf("Objects() = %d, want 4", l.Objects())
	}
}

func TestReplicaLagRemoved(t *testing.T) {
	l := NewReplicaLag()
	l.Received(1, 5)
	l.Received(1, 6)

	// A coalesced drop lowers UU but not MA: the replica still has not
	// installed generation 6.
	l.Removed(1)
	if ma, uu := l.Object(1); ma != 6 || uu != 1 {
		t.Fatalf("after remove lag = %v, %d, want 6, 1", ma, uu)
	}

	// Clamp: removals never drive the count negative.
	l.Removed(1)
	l.Removed(1)
	if _, uu := l.Object(1); uu != 0 {
		t.Fatalf("clamped UU = %d, want 0", uu)
	}
	if _, uu := l.Aggregate(); uu != 0 {
		t.Fatalf("clamped total = %d, want 0", uu)
	}

	// Installing the newest generation clears MA even after drops.
	l.Installed(1, 6)
	if ma, _ := l.Object(1); ma != 0 {
		t.Fatalf("MA after catch-up = %v, want 0", ma)
	}
}

func TestReplicaLagOutOfOrderInstall(t *testing.T) {
	l := NewReplicaLag()
	l.Received(model.ObjectID(2), 20)
	l.Installed(2, 20)
	// An older install must not regress the applied generation.
	l.Received(2, 15)
	l.Installed(2, 15)
	if ma, uu := l.Object(2); ma != 0 || uu != 0 {
		t.Fatalf("out-of-order install lag = %v, %d, want 0, 0", ma, uu)
	}
}
