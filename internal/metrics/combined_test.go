package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestCombinedUnionBasic(t *testing.T) {
	p := smallParams() // 2 low + 2 high, Delta = 5
	p.Staleness = model.CombinedMAUU
	tr := NewCombinedTracker(p)

	// Object 0: update received at t=1 (UU stale), installed at t=2
	// with gen 1.5 (fresh under both until 1.5+5=6.5).
	tr.Received(0, 1.5, 1)
	if !tr.IsStale(0, 1) {
		t.Fatal("pending update should make the object stale (UU side)")
	}
	tr.Installed(0, 1.5, 2)
	if tr.IsStale(0, 3) {
		t.Fatal("freshly installed object should be fresh")
	}
	if !tr.IsStale(0, 7) {
		t.Fatal("object should age out under the MA side")
	}
	tr.Finish(10)
	// Object 0: UU stale [1,2) = 1s, MA stale [6.5,10) = 3.5s; the
	// MA-initial span [5,?) does not apply because gen moved to 1.5
	// before t=5... but note the initial value (gen 0) was stale only
	// from t=5 and the install happened at t=2, so no overlap.
	// Object 1: never updated, MA stale [5,10) = 5s.
	want := 1 + 3.5 + 5.0
	if got := tr.StaleSeconds(model.Low); math.Abs(got-want) > 1e-9 {
		t.Fatalf("low stale seconds = %v, want %v", got, want)
	}
}

func TestCombinedOverlapNotDoubleCounted(t *testing.T) {
	p := smallParams()
	tr := NewCombinedTracker(p)
	// Object 0 is MA-stale from t=5. An update is received at t=6
	// (UU stale too) and never applied. The union must count [5,10)
	// once: 5 seconds.
	tr.Received(0, 6, 6)
	tr.Finish(10)
	wantObj0 := 5.0
	wantObj1 := 5.0 // untouched, MA stale [5,10)
	if got := tr.StaleSeconds(model.Low); math.Abs(got-(wantObj0+wantObj1)) > 1e-9 {
		t.Fatalf("low stale seconds = %v, want %v", got, wantObj0+wantObj1)
	}
}

func TestCombinedUUWithFreshMA(t *testing.T) {
	p := smallParams()
	tr := NewCombinedTracker(p)
	// Keep MA fresh with a recent install, then leave an update
	// pending: only the UU span counts.
	tr.Installed(0, 1, 1)
	tr.Received(0, 2, 2)
	tr.Installed(0, 2, 4) // fresh again
	tr.Finish(6)          // MA never triggers for object 0 (age < 5)
	wantObj0 := 2.0       // UU span [2,4)
	wantObj1 := 1.0       // untouched: MA stale [5,6)
	if got := tr.StaleSeconds(model.Low); math.Abs(got-(wantObj0+wantObj1)) > 1e-9 {
		t.Fatalf("low stale seconds = %v, want %v", got, wantObj0+wantObj1)
	}
}

func TestCombinedSelectedByNewTracker(t *testing.T) {
	p := smallParams()
	p.Staleness = model.CombinedMAUU
	if _, ok := NewTracker(p).(*CombinedTracker); !ok {
		t.Fatal("CombinedMAUU should select CombinedTracker")
	}
}

func TestCombinedGenTimeTracksInstalls(t *testing.T) {
	p := smallParams()
	tr := NewCombinedTracker(p)
	tr.Installed(2, 3.5, 4)
	if tr.GenTime(2) != 3.5 {
		t.Fatalf("GenTime = %v", tr.GenTime(2))
	}
}

// TestQuickCombinedAtLeastEachPart: the union integral is never
// smaller than either component alone.
func TestQuickCombinedAtLeastEachPart(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := model.DefaultParams()
		p.NLow, p.NHigh = 2, 2
		p.MaxAgeDelta = 3

		comb := NewCombinedTracker(&p)
		ma := NewMaxAgeTracker(&p)
		uu := NewUnappliedTracker(&p)

		tm := 0.0
		for i := 0; i < int(nOps); i++ {
			tm += r.Float64() * 2
			obj := model.ObjectID(r.Intn(4))
			gen := tm - r.Float64()*2
			switch r.Intn(3) {
			case 0:
				comb.Received(obj, gen, tm)
				ma.Received(obj, gen, tm)
				uu.Received(obj, gen, tm)
			case 1:
				comb.Removed(obj, gen, tm)
				ma.Removed(obj, gen, tm)
				uu.Removed(obj, gen, tm)
			case 2:
				comb.Installed(obj, gen, tm)
				ma.Installed(obj, gen, tm)
				uu.Installed(obj, gen, tm)
			}
		}
		end := tm + 1
		comb.Finish(end)
		ma.Finish(end)
		uu.Finish(end)
		for _, class := range []model.Importance{model.Low, model.High} {
			u := comb.StaleSeconds(class)
			if u+1e-9 < ma.StaleSeconds(class) || u+1e-9 < uu.StaleSeconds(class) {
				return false
			}
			// And never more than the sum (union bound) or the window.
			if u > ma.StaleSeconds(class)+uu.StaleSeconds(class)+1e-9 {
				return false
			}
			if u > end*2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorResponseTimes(t *testing.T) {
	p := model.DefaultParams()
	c := NewCollector(&p)
	for i, resp := range []float64{0.1, 0.2, 0.3} {
		txn := resolvedTxn(uint64(i), model.TxnCommittedState, 1, false)
		txn.ArrivalTime = 1
		txn.FinishTime = 1 + resp
		c.TxnResolved(txn)
	}
	c.Finish(10)
	tr := NewMaxAgeTracker(&p)
	tr.Finish(10)
	r := c.Result(tr)
	if math.Abs(r.ResponseMean-0.2) > 1e-12 {
		t.Fatalf("ResponseMean = %v, want 0.2", r.ResponseMean)
	}
	if r.ResponseP95 < 0.28 || r.ResponseP95 > 0.3+1e-12 {
		t.Fatalf("ResponseP95 = %v", r.ResponseP95)
	}
}
