package metrics

import (
	"math"
	"testing"

	"repro/internal/model"
)

func resolvedTxn(id uint64, state model.TxnState, value float64, stale bool) *model.Txn {
	return &model.Txn{
		ID:          id,
		Value:       value,
		ArrivalTime: 1,
		State:       state,
		ReadStale:   stale,
	}
}

func TestCollectorFractions(t *testing.T) {
	p := model.DefaultParams()
	c := NewCollector(&p)
	// 10 transactions: 6 committed (2 of them stale), 3 deadline
	// aborts, 1 stale abort.
	for i := 0; i < 4; i++ {
		c.TxnResolved(resolvedTxn(uint64(i), model.TxnCommittedState, 2.0, false))
	}
	for i := 4; i < 6; i++ {
		c.TxnResolved(resolvedTxn(uint64(i), model.TxnCommittedState, 1.0, true))
	}
	for i := 6; i < 9; i++ {
		c.TxnResolved(resolvedTxn(uint64(i), model.TxnAbortedDeadline, 1.0, false))
	}
	c.TxnResolved(resolvedTxn(9, model.TxnAbortedStale, 1.0, true))
	c.Finish(100)

	tr := NewMaxAgeTracker(&p)
	tr.Finish(100)
	r := c.Result(tr)

	if r.TxnsResolved != 10 || r.TxnsCommitted != 6 || r.TxnsCommittedFresh != 4 {
		t.Fatalf("counts: resolved=%d committed=%d fresh=%d",
			r.TxnsResolved, r.TxnsCommitted, r.TxnsCommittedFresh)
	}
	if got, want := r.PMissedDeadline, 0.4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("pMD = %v, want %v", got, want)
	}
	if got, want := r.PSuccess, 0.4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("psuccess = %v, want %v", got, want)
	}
	if got, want := r.PSuccessGivenNonTardy, 4.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("psuc|nontardy = %v, want %v", got, want)
	}
	// AV: committed value = 4*2 + 2*1 = 10 over 100s.
	if got, want := r.AvgValuePerSecond, 0.1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("AV = %v, want %v", got, want)
	}
	if r.TxnsAbortedDeadline != 3 || r.TxnsAbortedStale != 1 {
		t.Fatalf("aborts: dl=%d stale=%d", r.TxnsAbortedDeadline, r.TxnsAbortedStale)
	}
}

func TestCollectorWarmupExcludesEarlyTxns(t *testing.T) {
	p := model.DefaultParams()
	p.MetricsWarmup = 10
	c := NewCollector(&p)
	early := resolvedTxn(1, model.TxnCommittedState, 5, false)
	early.ArrivalTime = 5 // before warm-up: excluded
	c.TxnResolved(early)
	late := resolvedTxn(2, model.TxnCommittedState, 3, false)
	late.ArrivalTime = 15
	c.TxnResolved(late)
	c.Finish(110)
	tr := NewMaxAgeTracker(&p)
	tr.Finish(110)
	r := c.Result(tr)
	if r.TxnsResolved != 1 {
		t.Fatalf("resolved = %d, want 1", r.TxnsResolved)
	}
	// AV over the 100s measured window.
	if got, want := r.AvgValuePerSecond, 0.03; math.Abs(got-want) > 1e-12 {
		t.Fatalf("AV = %v, want %v", got, want)
	}
}

func TestCollectorCPUAccounting(t *testing.T) {
	p := model.DefaultParams()
	p.MetricsWarmup = 10
	c := NewCollector(&p)
	c.ChargeCPU(CPUTxn, 0, 20)     // clips to [10,20] = 10s
	c.ChargeCPU(CPUUpdate, 20, 45) // 25s
	c.ChargeCPU(CPUUpdate, 5, 8)   // fully before warm-up: 0
	c.Finish(110)
	tr := NewMaxAgeTracker(&p)
	tr.Finish(110)
	r := c.Result(tr)
	if got, want := r.RhoTxn, 0.1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("rho_t = %v, want %v", got, want)
	}
	if got, want := r.RhoUpdate, 0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("rho_u = %v, want %v", got, want)
	}
}

func TestCollectorFoldComputation(t *testing.T) {
	p := model.DefaultParams()
	p.NLow, p.NHigh = 2, 4
	p.MaxAgeDelta = 5
	c := NewCollector(&p)
	c.Finish(10)
	tr := NewMaxAgeTracker(&p)
	tr.Finish(10) // every object stale [5,10): 5s each
	r := c.Result(tr)
	if got, want := r.FOldLow, 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("fold_l = %v, want %v", got, want)
	}
	if got, want := r.FOldHigh, 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("fold_h = %v, want %v", got, want)
	}
}

func TestCollectorUpdateCounters(t *testing.T) {
	p := model.DefaultParams()
	c := NewCollector(&p)
	for i := 0; i < 5; i++ {
		c.UpdateArrived()
	}
	c.UpdateInstalled()
	c.UpdateInstalled()
	c.UpdateSkippedUnworthy()
	c.UpdateExpired()
	c.UpdateOverflowDropped()
	c.UpdateOSDropped()
	c.TxnArrived()
	c.SampleQueueLen(4)
	c.SampleQueueLen(6)
	c.Finish(10)
	tr := NewMaxAgeTracker(&p)
	tr.Finish(10)
	r := c.Result(tr)
	if r.UpdatesArrived != 5 || r.UpdatesInstalled != 2 ||
		r.UpdatesSkippedUnworthy != 1 || r.UpdatesExpired != 1 ||
		r.UpdatesOverflowDropped != 1 || r.UpdatesOSDropped != 1 {
		t.Fatalf("update counters wrong: %+v", r)
	}
	if r.TxnsArrived != 1 {
		t.Fatalf("TxnsArrived = %d", r.TxnsArrived)
	}
	if got, want := r.MeanQueueLen, 5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanQueueLen = %v, want %v", got, want)
	}
}

func TestCollectorResultBeforeFinishPanics(t *testing.T) {
	p := model.DefaultParams()
	c := NewCollector(&p)
	tr := NewMaxAgeTracker(&p)
	defer func() {
		if recover() == nil {
			t.Fatal("Result before Finish should panic")
		}
	}()
	c.Result(tr)
}

func TestCollectorResolvingPendingPanics(t *testing.T) {
	p := model.DefaultParams()
	c := NewCollector(&p)
	defer func() {
		if recover() == nil {
			t.Fatal("resolving a pending transaction should panic")
		}
	}()
	c.TxnResolved(resolvedTxn(1, model.TxnPendingState, 1, false))
}

func TestCollectorEmptyRun(t *testing.T) {
	p := model.DefaultParams()
	c := NewCollector(&p)
	c.Finish(0)
	tr := NewMaxAgeTracker(&p)
	tr.Finish(0)
	r := c.Result(tr)
	if r.PMissedDeadline != 0 || r.PSuccess != 0 || r.AvgValuePerSecond != 0 ||
		r.FOldLow != 0 || r.RhoTxn != 0 {
		t.Fatalf("empty run should yield zero metrics: %+v", r)
	}
}
