// Package metrics implements the evaluation metrics of §3.5: the
// time-averaged fraction of stale objects per importance class
// (fold_l, fold_h), the transaction outcome fractions (pMD, psuccess,
// psuc|nontardy), the average value returned per second (AV), and the
// CPU-time split between transactions and updates (ρt, ρu, Fig. 3).
//
// Staleness itself is pluggable: MaxAgeTracker implements the MA
// criterion, UnappliedTracker the UU criterion, and StrictUnapplied-
// Tracker the stricter UU variant discussed in §2.
package metrics

import (
	"repro/internal/model"
)

// Tracker observes the life of every update and answers, at any
// instant, whether an object is stale. Implementations also integrate
// the per-class stale fraction over time.
//
// The scheduler must call:
//   - Received when an update enters the update queue,
//   - Removed when an update leaves the queue without being applied
//     (expiry, overflow eviction, coalescing, superseded by OD),
//   - Installed when a value is written into the database.
type Tracker interface {
	// Received records that an update for the object with the given
	// generation time entered the update queue at time now.
	Received(obj model.ObjectID, gen, now float64)
	// Removed records that one queued update for the object left the
	// queue unapplied at time now.
	Removed(obj model.ObjectID, gen, now float64)
	// Installed records that the object's database value was replaced
	// by one with the given generation time at time now.
	Installed(obj model.ObjectID, gen, now float64)
	// IsStale reports whether the object is stale at time now.
	IsStale(obj model.ObjectID, now float64) bool
	// Finish flushes integration up to the end time. It must be
	// called exactly once, after which only StaleSeconds is valid.
	Finish(end float64)
	// StaleSeconds returns the integrated object-seconds of staleness
	// accumulated by the class (after warm-up clipping).
	StaleSeconds(class model.Importance) float64
}

// clip returns the length of [lo,hi] intersected with [warmup,∞).
func clip(lo, hi, warmup float64) float64 {
	if lo < warmup {
		lo = warmup
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// MaxAgeTracker implements the MA criterion: an object is stale when
// the age of its current value (now − generation time) exceeds Delta.
// Staleness intervals are integrated exactly and lazily: the stale
// span since the previous install is accrued at each install and at
// Finish.
type MaxAgeTracker struct {
	params  *model.Params
	delta   float64
	warmup  float64
	gen     []float64 // generation time of the installed value
	lastAcc []float64 // time up to which staleness has been accrued
	stale   [2]float64
	done    bool
}

// NewMaxAgeTracker returns an MA tracker for the given parameters.
// All objects start with generation time 0, so an untouched object
// becomes stale at t = Delta.
func NewMaxAgeTracker(p *model.Params) *MaxAgeTracker {
	n := p.NumObjects()
	return &MaxAgeTracker{
		params:  p,
		delta:   p.MaxAgeDelta,
		warmup:  p.MetricsWarmup,
		gen:     make([]float64, n),
		lastAcc: make([]float64, n),
	}
}

// Received is a no-op under MA.
func (t *MaxAgeTracker) Received(model.ObjectID, float64, float64) {}

// Removed is a no-op under MA.
func (t *MaxAgeTracker) Removed(model.ObjectID, float64, float64) {}

// accrue charges the stale span of obj from lastAcc up to now.
func (t *MaxAgeTracker) accrue(obj model.ObjectID, now float64) {
	staleFrom := t.gen[obj] + t.delta
	if staleFrom < t.lastAcc[obj] {
		staleFrom = t.lastAcc[obj]
	}
	if d := clip(staleFrom, now, t.warmup); d > 0 {
		t.stale[t.params.ObjectClass(obj)] += d
	}
	t.lastAcc[obj] = now
}

// Installed accrues the object's staleness up to now and adopts the
// new generation time. Installing an out-of-order (older) value is
// ignored, matching the worthiness check in §3.3.
func (t *MaxAgeTracker) Installed(obj model.ObjectID, gen, now float64) {
	t.accrue(obj, now)
	if gen > t.gen[obj] {
		t.gen[obj] = gen
	}
}

// IsStale reports whether the object's value is older than Delta.
func (t *MaxAgeTracker) IsStale(obj model.ObjectID, now float64) bool {
	return now-t.gen[obj] > t.delta
}

// GenTime returns the generation time of the object's current value.
// The scheduler uses it for the worthiness check.
func (t *MaxAgeTracker) GenTime(obj model.ObjectID) float64 { return t.gen[obj] }

// Finish accrues every object's staleness up to end.
func (t *MaxAgeTracker) Finish(end float64) {
	if t.done {
		return
	}
	t.done = true
	for obj := range t.gen {
		t.accrue(model.ObjectID(obj), end)
	}
}

// StaleSeconds returns the integrated stale object-seconds per class.
func (t *MaxAgeTracker) StaleSeconds(class model.Importance) float64 {
	return t.stale[class]
}

// UnappliedTracker implements the UU criterion literally: an object is
// stale exactly while at least one update for it waits in the update
// queue. An update dropped from the queue therefore un-stales the
// object (see DESIGN.md; StrictUnappliedTracker closes that gap).
type UnappliedTracker struct {
	params  *model.Params
	warmup  float64
	pending []int
	staleAt []float64 // time the object last became stale
	gen     []float64 // installed generation (worthiness check)
	stale   [2]float64
	done    bool
}

// NewUnappliedTracker returns a UU tracker. All objects start fresh.
func NewUnappliedTracker(p *model.Params) *UnappliedTracker {
	n := p.NumObjects()
	return &UnappliedTracker{
		params:  p,
		warmup:  p.MetricsWarmup,
		pending: make([]int, n),
		staleAt: make([]float64, n),
		gen:     make([]float64, n),
	}
}

// Received marks the object stale while its pending count is positive.
func (t *UnappliedTracker) Received(obj model.ObjectID, _, now float64) {
	if t.pending[obj] == 0 {
		t.staleAt[obj] = now
	}
	t.pending[obj]++
}

func (t *UnappliedTracker) drop(obj model.ObjectID, now float64) {
	if t.pending[obj] == 0 {
		return
	}
	t.pending[obj]--
	if t.pending[obj] == 0 {
		if d := clip(t.staleAt[obj], now, t.warmup); d > 0 {
			t.stale[t.params.ObjectClass(obj)] += d
		}
	}
}

// Removed decrements the object's pending count; the stale span ends
// when the count reaches zero.
func (t *UnappliedTracker) Removed(obj model.ObjectID, _, now float64) {
	t.drop(obj, now)
}

// Installed records the new generation and ends the stale span begun
// by the corresponding Received. The scheduler reports the applied
// update both as Installed (value change) and through the queue
// removal implied here: Installed itself decrements pending, because
// the applied update has left the queue.
func (t *UnappliedTracker) Installed(obj model.ObjectID, gen, now float64) {
	if gen > t.gen[obj] {
		t.gen[obj] = gen
	}
	t.drop(obj, now)
}

// IsStale reports whether any update for the object is queued.
func (t *UnappliedTracker) IsStale(obj model.ObjectID, _ float64) bool {
	return t.pending[obj] > 0
}

// GenTime returns the installed generation time.
func (t *UnappliedTracker) GenTime(obj model.ObjectID) float64 { return t.gen[obj] }

// Pending returns the queued-update count for the object.
func (t *UnappliedTracker) Pending(obj model.ObjectID) int { return t.pending[obj] }

// Finish closes every open stale span at end.
func (t *UnappliedTracker) Finish(end float64) {
	if t.done {
		return
	}
	t.done = true
	for obj, n := range t.pending {
		if n > 0 {
			if d := clip(t.staleAt[obj], end, t.warmup); d > 0 {
				t.stale[t.params.ObjectClass(model.ObjectID(obj))] += d
			}
		}
	}
}

// StaleSeconds returns the integrated stale object-seconds per class.
func (t *UnappliedTracker) StaleSeconds(class model.Importance) float64 {
	return t.stale[class]
}

// StrictUnappliedTracker is the §2 "variation": an object is stale
// while the newest generation the system has *received* for it exceeds
// the generation installed in the database, even if the queued update
// was later dropped. Dropping an update therefore leaves the object
// stale until a newer update is applied.
type StrictUnappliedTracker struct {
	params   *model.Params
	warmup   float64
	received []float64
	gen      []float64
	staleAt  []float64
	isStale  []bool
	stale    [2]float64
	done     bool
}

// NewStrictUnappliedTracker returns a UU-strict tracker.
func NewStrictUnappliedTracker(p *model.Params) *StrictUnappliedTracker {
	n := p.NumObjects()
	return &StrictUnappliedTracker{
		params:   p,
		warmup:   p.MetricsWarmup,
		received: make([]float64, n),
		gen:      make([]float64, n),
		staleAt:  make([]float64, n),
		isStale:  make([]bool, n),
	}
}

// Received marks the object stale if the update carries a newer
// generation than the installed value.
func (t *StrictUnappliedTracker) Received(obj model.ObjectID, gen, now float64) {
	if gen > t.received[obj] {
		t.received[obj] = gen
	}
	if !t.isStale[obj] && t.received[obj] > t.gen[obj] {
		t.isStale[obj] = true
		t.staleAt[obj] = now
	}
}

// Removed is a no-op: dropping an update does not make the value fresh.
func (t *StrictUnappliedTracker) Removed(model.ObjectID, float64, float64) {}

// Installed adopts the new generation and ends the stale span if the
// installed value has caught up with everything received.
func (t *StrictUnappliedTracker) Installed(obj model.ObjectID, gen, now float64) {
	if gen > t.gen[obj] {
		t.gen[obj] = gen
	}
	if t.isStale[obj] && t.gen[obj] >= t.received[obj] {
		t.isStale[obj] = false
		if d := clip(t.staleAt[obj], now, t.warmup); d > 0 {
			t.stale[t.params.ObjectClass(obj)] += d
		}
	}
}

// IsStale reports whether a newer generation has been received than
// installed.
func (t *StrictUnappliedTracker) IsStale(obj model.ObjectID, _ float64) bool {
	return t.isStale[obj]
}

// GenTime returns the installed generation time.
func (t *StrictUnappliedTracker) GenTime(obj model.ObjectID) float64 { return t.gen[obj] }

// Finish closes every open stale span at end.
func (t *StrictUnappliedTracker) Finish(end float64) {
	if t.done {
		return
	}
	t.done = true
	for obj, s := range t.isStale {
		if s {
			if d := clip(t.staleAt[obj], end, t.warmup); d > 0 {
				t.stale[t.params.ObjectClass(model.ObjectID(obj))] += d
			}
		}
	}
}

// StaleSeconds returns the integrated stale object-seconds per class.
func (t *StrictUnappliedTracker) StaleSeconds(class model.Importance) float64 {
	return t.stale[class]
}

// NewTracker returns the tracker matching the configured criterion.
func NewTracker(p *model.Params) Tracker {
	switch p.Staleness {
	case model.UnappliedUpdate:
		return NewUnappliedTracker(p)
	case model.UnappliedUpdateStrict:
		return NewStrictUnappliedTracker(p)
	case model.CombinedMAUU:
		return NewCombinedTracker(p)
	default:
		return NewMaxAgeTracker(p)
	}
}

// GenTimer is implemented by every tracker in this package and exposes
// the generation time of the installed value, which the scheduler
// needs for the worthiness check of §3.3.
type GenTimer interface {
	GenTime(obj model.ObjectID) float64
}
