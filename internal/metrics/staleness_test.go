package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// smallParams returns a 2-low/2-high object world with Delta = 5s.
func smallParams() *model.Params {
	p := model.DefaultParams()
	p.NLow, p.NHigh = 2, 2
	p.MaxAgeDelta = 5
	return &p
}

func TestMaxAgeInitialStaleness(t *testing.T) {
	p := smallParams()
	tr := NewMaxAgeTracker(p)
	// All objects have generation 0, so they are fresh until t=5.
	if tr.IsStale(0, 4.9) {
		t.Fatal("object stale before Delta elapsed")
	}
	if !tr.IsStale(0, 5.1) {
		t.Fatal("object fresh after Delta elapsed")
	}
	tr.Finish(10)
	// Each object stale during [5,10]: 2 objects * 5s per class.
	if got := tr.StaleSeconds(model.Low); math.Abs(got-10) > 1e-9 {
		t.Fatalf("low stale seconds = %v, want 10", got)
	}
	if got := tr.StaleSeconds(model.High); math.Abs(got-10) > 1e-9 {
		t.Fatalf("high stale seconds = %v, want 10", got)
	}
}

func TestMaxAgeInstallRefreshes(t *testing.T) {
	p := smallParams()
	tr := NewMaxAgeTracker(p)
	// Install a value generated at t=6 at time 6.5 on object 0.
	tr.Installed(0, 6, 6.5)
	if tr.GenTime(0) != 6 {
		t.Fatalf("GenTime = %v", tr.GenTime(0))
	}
	if tr.IsStale(0, 10) {
		t.Fatal("object stale at age 4 < Delta 5")
	}
	if !tr.IsStale(0, 11.5) {
		t.Fatal("object fresh at age 5.5 > Delta")
	}
	tr.Finish(13)
	// Object 0: stale [5,6.5) from the initial value (1.5s) and
	// [11,13) from the installed one (2s) = 3.5s. Object 1: [5,13) = 8s.
	if got, want := tr.StaleSeconds(model.Low), 11.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("low stale seconds = %v, want %v", got, want)
	}
}

func TestMaxAgeOutOfOrderInstallIgnored(t *testing.T) {
	p := smallParams()
	tr := NewMaxAgeTracker(p)
	tr.Installed(0, 6, 6)
	tr.Installed(0, 3, 7) // older generation: should not regress
	if tr.GenTime(0) != 6 {
		t.Fatalf("GenTime regressed to %v", tr.GenTime(0))
	}
}

func TestMaxAgeAlreadyStaleOnInstall(t *testing.T) {
	p := smallParams()
	tr := NewMaxAgeTracker(p)
	// A value generated at t=1 installed at t=8 is already stale
	// (age 7 > 5): staleness continues seamlessly.
	tr.Installed(0, 1, 8)
	if !tr.IsStale(0, 8) {
		t.Fatal("aged value should be stale on arrival")
	}
	tr.Finish(10)
	// Object 0 stale [5,10) = 5s (initial gen 0 stale from 5; the
	// aged install never makes it fresh).
	// Objects 1..3 stale [5,10) = 5 each.
	if got := tr.StaleSeconds(model.Low); math.Abs(got-10) > 1e-9 {
		t.Fatalf("low stale seconds = %v, want 10", got)
	}
}

func TestMaxAgeWarmupClipping(t *testing.T) {
	p := smallParams()
	p.MetricsWarmup = 8
	tr := NewMaxAgeTracker(p)
	tr.Finish(10)
	// Stale spans [5,10) clip to [8,10): 2s per object, 2 objects.
	if got := tr.StaleSeconds(model.Low); math.Abs(got-4) > 1e-9 {
		t.Fatalf("low stale seconds = %v, want 4", got)
	}
}

func TestMaxAgeDoubleFinish(t *testing.T) {
	p := smallParams()
	tr := NewMaxAgeTracker(p)
	tr.Finish(10)
	first := tr.StaleSeconds(model.Low)
	tr.Finish(20) // ignored
	if tr.StaleSeconds(model.Low) != first {
		t.Fatal("second Finish changed totals")
	}
}

func TestUnappliedBasicSpan(t *testing.T) {
	p := smallParams()
	tr := NewUnappliedTracker(p)
	if tr.IsStale(0, 1) {
		t.Fatal("object stale with empty queue")
	}
	tr.Received(0, 0.5, 1) // stale from t=1
	if !tr.IsStale(0, 1) {
		t.Fatal("object fresh with pending update")
	}
	tr.Installed(0, 0.5, 3) // fresh from t=3
	if tr.IsStale(0, 3) {
		t.Fatal("object stale after install")
	}
	tr.Finish(10)
	if got := tr.StaleSeconds(model.Low); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stale seconds = %v, want 2", got)
	}
	if tr.GenTime(0) != 0.5 {
		t.Fatalf("GenTime = %v", tr.GenTime(0))
	}
}

func TestUnappliedMultiplePending(t *testing.T) {
	p := smallParams()
	tr := NewUnappliedTracker(p)
	tr.Received(0, 1, 1)
	tr.Received(0, 2, 2)
	if tr.Pending(0) != 2 {
		t.Fatalf("Pending = %d", tr.Pending(0))
	}
	tr.Removed(0, 1, 3) // one dropped; still stale
	if !tr.IsStale(0, 3) {
		t.Fatal("object fresh with one update still pending")
	}
	tr.Installed(0, 2, 5)
	if tr.IsStale(0, 5) {
		t.Fatal("object stale after all pending cleared")
	}
	tr.Finish(10)
	if got := tr.StaleSeconds(model.Low); math.Abs(got-4) > 1e-9 {
		t.Fatalf("stale seconds = %v, want 4 (span [1,5))", got)
	}
}

func TestUnappliedDropUnstales(t *testing.T) {
	// The literal UU definition: dropping the only pending update
	// makes the object "fresh" again.
	p := smallParams()
	tr := NewUnappliedTracker(p)
	tr.Received(0, 1, 1)
	tr.Removed(0, 1, 4)
	if tr.IsStale(0, 4) {
		t.Fatal("object should be fresh after drop under literal UU")
	}
	tr.Finish(10)
	if got := tr.StaleSeconds(model.Low); math.Abs(got-3) > 1e-9 {
		t.Fatalf("stale seconds = %v, want 3", got)
	}
}

func TestUnappliedSpuriousDropIgnored(t *testing.T) {
	p := smallParams()
	tr := NewUnappliedTracker(p)
	tr.Removed(0, 1, 4) // nothing pending: no-op
	tr.Installed(0, 1, 5)
	tr.Finish(10)
	if got := tr.StaleSeconds(model.Low); got != 0 {
		t.Fatalf("stale seconds = %v, want 0", got)
	}
}

func TestUnappliedFinishClosesOpenSpans(t *testing.T) {
	p := smallParams()
	tr := NewUnappliedTracker(p)
	tr.Received(2, 1, 6) // object 2 is high class
	tr.Finish(10)
	if got := tr.StaleSeconds(model.High); math.Abs(got-4) > 1e-9 {
		t.Fatalf("high stale seconds = %v, want 4", got)
	}
	if got := tr.StaleSeconds(model.Low); got != 0 {
		t.Fatalf("low stale seconds = %v, want 0", got)
	}
}

func TestStrictUnappliedDropKeepsStale(t *testing.T) {
	p := smallParams()
	tr := NewStrictUnappliedTracker(p)
	tr.Received(0, 1, 1)
	tr.Removed(0, 1, 4) // dropped, but the DB value is still old
	if !tr.IsStale(0, 4) {
		t.Fatal("strict UU: object should stay stale after drop")
	}
	// A newer update arrives and is installed.
	tr.Received(0, 2, 6)
	tr.Installed(0, 2, 7)
	if tr.IsStale(0, 7) {
		t.Fatal("object should be fresh after catching up")
	}
	tr.Finish(10)
	if got := tr.StaleSeconds(model.Low); math.Abs(got-6) > 1e-9 {
		t.Fatalf("stale seconds = %v, want 6 (span [1,7))", got)
	}
}

func TestStrictUnappliedPartialCatchUp(t *testing.T) {
	p := smallParams()
	tr := NewStrictUnappliedTracker(p)
	tr.Received(0, 5, 1)
	tr.Installed(0, 3, 2) // older than newest received: still stale
	if !tr.IsStale(0, 2) {
		t.Fatal("installing an older generation should not freshen")
	}
	tr.Installed(0, 5, 3)
	if tr.IsStale(0, 3) {
		t.Fatal("object should be fresh at newest received generation")
	}
}

func TestNewTrackerSelection(t *testing.T) {
	p := smallParams()
	p.Staleness = model.MaxAge
	if _, ok := NewTracker(p).(*MaxAgeTracker); !ok {
		t.Fatal("MA should select MaxAgeTracker")
	}
	p.Staleness = model.UnappliedUpdate
	if _, ok := NewTracker(p).(*UnappliedTracker); !ok {
		t.Fatal("UU should select UnappliedTracker")
	}
	p.Staleness = model.UnappliedUpdateStrict
	if _, ok := NewTracker(p).(*StrictUnappliedTracker); !ok {
		t.Fatal("UU-strict should select StrictUnappliedTracker")
	}
}

// TestQuickMaxAgeMatchesBruteForce compares the lazy integration with
// a brute-force time-sweep on random install schedules.
func TestQuickMaxAgeMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nInstalls uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := model.DefaultParams()
		p.NLow, p.NHigh = 1, 0
		p.MaxAgeDelta = 3
		tr := NewMaxAgeTracker(&p)

		const end = 50.0
		type install struct{ gen, at float64 }
		installs := make([]install, 0, nInstalls)
		tm := 0.0
		for i := 0; i < int(nInstalls); i++ {
			tm += r.Float64() * 5
			if tm >= end {
				break
			}
			gen := tm - r.Float64()*4 // value aged up to 4s
			if gen < 0 {
				gen = 0
			}
			installs = append(installs, install{gen, tm})
			tr.Installed(0, gen, tm)
		}
		tr.Finish(end)
		got := tr.StaleSeconds(model.Low)

		// Brute force with a fine grid, taking the same
		// monotone-generation semantics.
		const dt = 0.001
		brute := 0.0
		gen := 0.0
		idx := 0
		for tt := 0.0; tt < end; tt += dt {
			for idx < len(installs) && installs[idx].at <= tt {
				if installs[idx].gen > gen {
					gen = installs[idx].gen
				}
				idx++
			}
			if tt-gen > p.MaxAgeDelta {
				brute += dt
			}
		}
		return math.Abs(got-brute) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnappliedBounded checks the UU integral can never exceed
// duration * objects.
func TestQuickUnappliedBounded(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := model.DefaultParams()
		p.NLow, p.NHigh = 3, 3
		tr := NewUnappliedTracker(&p)
		tm := 0.0
		for i := 0; i < int(nOps); i++ {
			tm += r.Float64()
			obj := model.ObjectID(r.Intn(6))
			switch r.Intn(3) {
			case 0:
				tr.Received(obj, tm, tm)
			case 1:
				tr.Removed(obj, tm, tm)
			case 2:
				tr.Installed(obj, tm, tm)
			}
		}
		tr.Finish(tm + 1)
		total := tr.StaleSeconds(model.Low) + tr.StaleSeconds(model.High)
		return total >= 0 && total <= (tm+1)*6+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
