package metrics

import (
	"repro/internal/model"
)

// MaxStaleness records the worst install-time age ever observed per
// view object: how old (now minus generation time, seconds) each
// object's value was at the moment it became visible. The paper's MA
// criterion asks whether an object's age exceeds Delta *right now*;
// this tracker keeps the complementary long-run figure — the worst
// age each object ever served — which is what an operator tunes
// policies against (a staleness histogram shows the distribution,
// this shows the per-object tail).
//
// Like ReplicaLag it is not safe for concurrent use; the strip
// database calls it under its registry lock. Objects are added on
// first observation.
type MaxStaleness struct {
	perObject []float64 // worst observed age per object (seconds)
	overall   float64   // max over perObject
}

// NewMaxStaleness returns an empty tracker.
func NewMaxStaleness() *MaxStaleness { return &MaxStaleness{} }

// Observe records one install of obj whose value was age seconds old
// at visibility. Negative ages (clock steps) are treated as zero.
func (m *MaxStaleness) Observe(obj model.ObjectID, age float64) {
	if age < 0 {
		age = 0
	}
	for len(m.perObject) <= int(obj) {
		m.perObject = append(m.perObject, 0)
	}
	if age > m.perObject[obj] {
		m.perObject[obj] = age
	}
	if age > m.overall {
		m.overall = age
	}
}

// Object returns the worst age observed for obj, zero when unknown.
func (m *MaxStaleness) Object(obj model.ObjectID) float64 {
	if int(obj) >= len(m.perObject) || int(obj) < 0 {
		return 0
	}
	return m.perObject[obj]
}

// Max returns the worst age observed over all objects.
func (m *MaxStaleness) Max() float64 { return m.overall }

// Objects returns the number of objects the tracker has seen.
func (m *MaxStaleness) Objects() int { return len(m.perObject) }
