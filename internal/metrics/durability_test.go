package metrics

import "testing"

func TestDurabilityEpisodes(t *testing.T) {
	d := NewDurability()
	if d.Degraded() || d.WALErrors() != 0 || d.Episodes() != 0 || d.Heals() != 0 {
		t.Fatal("fresh tracker not healthy")
	}

	// Healing a healthy tracker is a no-op.
	d.Heal()
	if d.Heals() != 0 {
		t.Fatalf("heal counted on healthy tracker: %d", d.Heals())
	}

	// Three failures inside one episode: three errors, one episode.
	d.Failure()
	d.Failure()
	d.Failure()
	if !d.Degraded() || d.WALErrors() != 3 || d.Episodes() != 1 {
		t.Fatalf("after failures: degraded=%v errors=%d episodes=%d",
			d.Degraded(), d.WALErrors(), d.Episodes())
	}

	d.Heal()
	if d.Degraded() || d.Heals() != 1 {
		t.Fatalf("after heal: degraded=%v heals=%d", d.Degraded(), d.Heals())
	}

	// A second episode is counted separately.
	d.Failure()
	if !d.Degraded() || d.WALErrors() != 4 || d.Episodes() != 2 {
		t.Fatalf("second episode: degraded=%v errors=%d episodes=%d",
			d.Degraded(), d.WALErrors(), d.Episodes())
	}
}
