package metrics

// Durability tracks the health of a database's write-ahead log and
// its degraded-mode episodes. The strip database degrades when a WAL
// append, sync or rotation fails: commits fail fast with a typed
// durability error while view ingest and reads continue, and a
// successful checkpoint heals the log by rotating to a fresh segment.
// This tracker counts the failures and the heals and exposes the
// current mode.
//
// Like ReplicaLag it is not safe for concurrent use; the strip
// database calls it under its registry lock.
type Durability struct {
	walErrors uint64
	episodes  uint64
	heals     uint64
	degraded  bool
}

// NewDurability returns a healthy tracker.
func NewDurability() *Durability { return &Durability{} }

// Failure records one WAL failure and enters degraded mode. Repeated
// failures inside one episode count as errors but not new episodes.
func (d *Durability) Failure() {
	d.walErrors++
	if !d.degraded {
		d.degraded = true
		d.episodes++
	}
}

// Heal records a successful checkpoint ending a degraded episode. It
// is idempotent: healing a healthy tracker changes nothing.
func (d *Durability) Heal() {
	if d.degraded {
		d.degraded = false
		d.heals++
	}
}

// Degraded reports whether the database is in degraded mode.
func (d *Durability) Degraded() bool { return d.degraded }

// WALErrors returns the count of WAL failures recorded.
func (d *Durability) WALErrors() uint64 { return d.walErrors }

// Episodes returns the number of degraded episodes entered.
func (d *Durability) Episodes() uint64 { return d.episodes }

// Heals returns the number of episodes ended by a checkpoint.
func (d *Durability) Heals() uint64 { return d.heals }
