package analytic

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
)

func TestUpdateCPUDemandBaseline(t *testing.T) {
	p := model.DefaultParams()
	// 400/s * 24000 instr / 50e6 = 0.192 — the Fig 3 plateau.
	if got, want := UpdateCPUDemand(&p), 0.192; math.Abs(got-want) > 1e-12 {
		t.Fatalf("demand = %v, want %v", got, want)
	}
}

func TestPerObjectUpdateRate(t *testing.T) {
	p := model.DefaultParams()
	// 400 * 0.5 / 500 = 0.4/s for both classes at the baseline.
	if got := PerObjectUpdateRate(&p, model.Low); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("low rate = %v", got)
	}
	if got := PerObjectUpdateRate(&p, model.High); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("high rate = %v", got)
	}
	p.NLow = 0
	if got := PerObjectUpdateRate(&p, model.Low); got != 0 {
		t.Fatalf("empty partition rate = %v", got)
	}
}

func TestStaleFractionFormulaLimits(t *testing.T) {
	p := model.DefaultParams()
	// Zero network age: pure e^{-mu*Delta}.
	p.MeanUpdateAge = 0
	want := math.Exp(-0.4 * 7)
	if got := StaleFractionImmediateInstall(&p, model.Low); math.Abs(got-want) > 1e-12 {
		t.Fatalf("a=0 fraction = %v, want %v", got, want)
	}
	// The a -> 1/mu limit is continuous.
	p.MeanUpdateAge = 1/0.4 - 1e-7
	near := StaleFractionImmediateInstall(&p, model.Low)
	p.MeanUpdateAge = 1 / 0.4
	at := StaleFractionImmediateInstall(&p, model.Low)
	if math.Abs(near-at) > 1e-4 {
		t.Fatalf("discontinuity at a=1/mu: %v vs %v", near, at)
	}
	// No updates: always stale.
	p.UpdateRate = 0
	if got := StaleFractionImmediateInstall(&p, model.Low); got != 1 {
		t.Fatalf("no-update fraction = %v", got)
	}
}

// TestSimulatorMatchesAnalyticStaleFraction is the independent
// validation: under UF (immediate installs) the measured fold must
// match the closed-form prediction.
func TestSimulatorMatchesAnalyticStaleFraction(t *testing.T) {
	for _, delta := range []float64{3, 5, 7} {
		p := model.DefaultParams()
		p.MaxAgeDelta = delta
		p.TxnRate = 1 // light load; UF installs immediately regardless
		want := StaleFractionImmediateInstall(&p, model.Low)
		r := sched.MustRun(sched.Config{Params: p, Policy: sched.UF, Seed: 5, Duration: 400})
		if math.Abs(r.FOldLow-want) > 0.012 {
			t.Errorf("Delta=%v: measured fold_l = %.4f, analytic %.4f", delta, r.FOldLow, want)
		}
		if math.Abs(r.FOldHigh-want) > 0.012 {
			t.Errorf("Delta=%v: measured fold_h = %.4f, analytic %.4f", delta, r.FOldHigh, want)
		}
	}
}

// TestSimulatorMatchesAnalyticCPUDemand checks the measured rho_u
// against the closed form across update rates.
func TestSimulatorMatchesAnalyticCPUDemand(t *testing.T) {
	for _, rate := range []float64{100, 400, 600} {
		p := model.DefaultParams()
		p.UpdateRate = rate
		p.TxnRate = 1
		want := UpdateCPUDemand(&p)
		r := sched.MustRun(sched.Config{Params: p, Policy: sched.UF, Seed: 9, Duration: 100})
		if math.Abs(r.RhoUpdate-want) > 0.01 {
			t.Errorf("rate %v: measured rho_u = %.4f, analytic %.4f", rate, r.RhoUpdate, want)
		}
	}
}

func TestSaturationTxnRate(t *testing.T) {
	p := model.DefaultParams()
	// (1 - 0.192) / (0.12 + 2*4000/50e6) = 6.72...
	want := (1 - 0.192) / 0.12016
	if got := SaturationTxnRate(&p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("saturation rate = %v, want %v", got, want)
	}
	// Beyond saturation, UF's measured rho_t must flatten near
	// 1 - UpdateCPUDemand.
	p.TxnRate = 25
	r := sched.MustRun(sched.Config{Params: p, Policy: sched.UF, Seed: 11, Duration: 60})
	if math.Abs(r.RhoTxn-(1-0.192)) > 0.02 {
		t.Fatalf("UF rho_t at overload = %v, want about %v", r.RhoTxn, 1-0.192)
	}
}

func TestMeanInstallLatencyMM1(t *testing.T) {
	p := model.DefaultParams()
	// Full CPU: mu = 50e6/24000 = 2083/s >> 400/s.
	w := MeanInstallLatencyMM1(&p, 1.0)
	if w <= 0 || w > 0.001 {
		t.Fatalf("full-share latency = %v", w)
	}
	// Share below demand: unstable queue.
	if !math.IsInf(MeanInstallLatencyMM1(&p, 0.1), 1) {
		t.Fatal("under-provisioned share should be unstable")
	}
	p.XLookup, p.XUpdate = 0, 0
	if MeanInstallLatencyMM1(&p, 1) != 0 {
		t.Fatal("zero-cost installs should have zero latency")
	}
}
