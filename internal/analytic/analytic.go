// Package analytic provides closed-form predictions for corners of
// the model where queueing theory gives exact answers. They serve as
// an independent check on the simulator: where a formula exists, the
// measured value must match it.
package analytic

import (
	"math"

	"repro/internal/model"
)

// UpdateCPUDemand returns the long-run CPU utilization of installing
// the full update stream: λu · (xlookup + xupdate) / ips. This is the
// ρu plateau of Fig. 3 (≈ 0.192 at the baseline).
func UpdateCPUDemand(p *model.Params) float64 {
	return p.UpdateRate * p.InstallCost() / p.IPS
}

// PerObjectUpdateRate returns the Poisson refresh rate of a single
// object in the given class.
func PerObjectUpdateRate(p *model.Params, class model.Importance) float64 {
	if class == model.Low {
		if p.NLow == 0 {
			return 0
		}
		return p.UpdateRate * p.PUpdateLow / float64(p.NLow)
	}
	if p.NHigh == 0 {
		return 0
	}
	return p.UpdateRate * (1 - p.PUpdateLow) / float64(p.NHigh)
}

// StaleFractionImmediateInstall returns the steady-state MA stale
// fraction for a class when every update installs immediately on
// arrival (the UF regime). With Poisson per-object refreshes at rate
// μ and exponential network ages of mean ā, a value generated at time
// g expires at g+Δ; the object is stale whenever the time since the
// last *generation* exceeds Δ. The time since the last generation is
// the (stationary) time since the last arrival plus that update's
// age; both exponential, so for ā ≠ 1/μ:
//
//	P(stale) = (μ·ā·e^{-Δ/ā} - e^{-μΔ}) / (μ·ā - 1)
//
// and e^{-μΔ}(1 + μΔ) in the ā → 1/μ limit. For ā = 0 it reduces to
// the intuitive e^{-μΔ}.
func StaleFractionImmediateInstall(p *model.Params, class model.Importance) float64 {
	mu := PerObjectUpdateRate(p, class)
	if mu <= 0 {
		return 1
	}
	delta := p.MaxAgeDelta
	abar := p.MeanUpdateAge
	if abar <= 0 {
		return math.Exp(-mu * delta)
	}
	x := mu * abar
	if math.Abs(x-1) < 1e-9 {
		return math.Exp(-mu*delta) * (1 + mu*delta)
	}
	return (x*math.Exp(-delta/abar) - math.Exp(-mu*delta)) / (x - 1)
}

// TxnCPUDemand returns the offered transaction load: λt times the
// mean execution time (computation plus view lookups).
func TxnCPUDemand(p *model.Params) float64 {
	meanExec := p.CompMean + p.ReadsMean*p.XLookup/p.IPS
	return p.TxnRate * meanExec
}

// SaturationTxnRate returns the transaction arrival rate at which the
// CPU saturates, given that the update stream takes its full demand
// (the UF regime): λt* such that TxnCPUDemand + UpdateCPUDemand = 1.
func SaturationTxnRate(p *model.Params) float64 {
	meanExec := p.CompMean + p.ReadsMean*p.XLookup/p.IPS
	if meanExec <= 0 {
		return math.Inf(1)
	}
	return (1 - UpdateCPUDemand(p)) / meanExec
}

// MeanInstallLatencyMM1 returns the M/M/1 sojourn-time approximation
// for an update waiting to install when updates get a dedicated CPU
// share rho (the FC regime): service rate μ = rho·ips/installCost,
// arrival rate λu; W = 1/(μ − λu) for μ > λu, +Inf otherwise. The
// approximation treats install times as exponential; the model's are
// near-deterministic, so this is an upper bound within 2x.
func MeanInstallLatencyMM1(p *model.Params, share float64) float64 {
	if p.InstallCost() <= 0 {
		return 0
	}
	mu := share * p.IPS / p.InstallCost()
	if mu <= p.UpdateRate {
		return math.Inf(1)
	}
	return 1 / (mu - p.UpdateRate)
}
