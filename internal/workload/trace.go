package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/model"
)

// TraceUpdateSource replays a recorded update stream instead of a
// synthetic one — the trace-driven mode used when a real feed capture
// (e.g. a day of market data) is available. The text format is one
// update per line:
//
//	<arrival-seconds> <generation-seconds> <object-id>
//
// Blank lines and lines starting with '#' are skipped. Arrival times
// must be non-decreasing; the object ID must lie inside the configured
// partitions.
type TraceUpdateSource struct {
	params  *model.Params
	sc      *bufio.Scanner
	seq     uint64
	lastArr float64
	lineNo  int
	err     error
}

// NewTraceUpdateSource reads the trace from r. Errors surface from
// Err after Next returns nil.
func NewTraceUpdateSource(p *model.Params, r io.Reader) *TraceUpdateSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &TraceUpdateSource{params: p, sc: sc}
}

// Next returns the next update from the trace, or nil at end of input
// or on a malformed line (check Err to distinguish).
func (s *TraceUpdateSource) Next() *model.Update {
	for s.err == nil && s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			s.err = fmt.Errorf("workload: trace line %d: %d fields, want 3", s.lineNo, len(fields))
			return nil
		}
		arrival, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			s.err = fmt.Errorf("workload: trace line %d: bad arrival: %v", s.lineNo, err)
			return nil
		}
		gen, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			s.err = fmt.Errorf("workload: trace line %d: bad generation: %v", s.lineNo, err)
			return nil
		}
		obj, err := strconv.Atoi(fields[2])
		if err != nil || obj < 0 || obj >= s.params.NumObjects() {
			s.err = fmt.Errorf("workload: trace line %d: object %q out of range [0,%d)",
				s.lineNo, fields[2], s.params.NumObjects())
			return nil
		}
		if arrival < s.lastArr {
			s.err = fmt.Errorf("workload: trace line %d: arrival %v before %v",
				s.lineNo, arrival, s.lastArr)
			return nil
		}
		if gen > arrival {
			s.err = fmt.Errorf("workload: trace line %d: generation %v after arrival %v",
				s.lineNo, gen, arrival)
			return nil
		}
		s.lastArr = arrival
		s.seq++
		id := model.ObjectID(obj)
		return &model.Update{
			Seq:         s.seq,
			Object:      id,
			Class:       s.params.ObjectClass(id),
			GenTime:     gen,
			ArrivalTime: arrival,
		}
	}
	if s.err == nil {
		s.err = s.sc.Err()
	}
	return nil
}

// Err returns the first error encountered, or nil at a clean end of
// trace.
func (s *TraceUpdateSource) Err() error { return s.err }

// WriteTraceLine encodes one update in the trace format (without a
// newline). It is the inverse of the parser, for recording synthetic
// streams to disk.
func WriteTraceLine(u *model.Update) string {
	return fmt.Sprintf("%s %s %d",
		strconv.FormatFloat(u.ArrivalTime, 'g', -1, 64),
		strconv.FormatFloat(u.GenTime, 'g', -1, 64),
		u.Object)
}
