package workload

import (
	"math"
	"time"

	"repro/internal/model"
	"repro/internal/stats"
)

// PhaseSpec is one constant-rate segment of a multi-period workload:
// Poisson arrivals at Rate updates/second for Duration seconds. A
// sequence of segments composes the temporal shapes the scenario
// runner exposes (flash crowds, diurnal cycles, ramps) out of pieces
// whose statistics are exact — the generator restarts the exponential
// draw at each boundary, which memorylessness makes equivalent to
// thinning a single stream.
type PhaseSpec struct {
	// Rate is the update arrival rate inside the segment (1/s). Zero
	// is a silence: no arrivals for Duration seconds.
	Rate float64
	// Duration is the segment length in seconds; must be > 0.
	Duration float64
}

// FlashCrowdPhases composes the classic flash-crowd shape: base rate,
// then a spike of base*mult for spikeDur seconds starting at spikeAt,
// then base again until total seconds have elapsed.
func FlashCrowdPhases(base, mult, total, spikeAt, spikeDur float64) []PhaseSpec {
	if spikeAt < 0 {
		spikeAt = 0
	}
	if spikeAt+spikeDur > total {
		spikeDur = total - spikeAt
	}
	var out []PhaseSpec
	if spikeAt > 0 {
		out = append(out, PhaseSpec{Rate: base, Duration: spikeAt})
	}
	if spikeDur > 0 {
		out = append(out, PhaseSpec{Rate: base * mult, Duration: spikeDur})
	}
	if rest := total - spikeAt - spikeDur; rest > 0 {
		out = append(out, PhaseSpec{Rate: base, Duration: rest})
	}
	return out
}

// DiurnalPhases approximates periods sinusoidal day/night cycles over
// total seconds with steps piecewise-constant segments per period: the
// rate swings between base and base*peak, spending equal time in each
// step. steps < 2 is raised to 8.
func DiurnalPhases(base, peak, total float64, periods, steps int) []PhaseSpec {
	if periods < 1 {
		periods = 1
	}
	if steps < 2 {
		steps = 8
	}
	segDur := total / float64(periods*steps)
	out := make([]PhaseSpec, 0, periods*steps)
	for p := 0; p < periods; p++ {
		for s := 0; s < steps; s++ {
			// Sample the half-sine envelope at the segment midpoint:
			// f in [0, 1], 0 at the trough, 1 at the peak.
			mid := (float64(s) + 0.5) / float64(steps)
			f := 0.5 - 0.5*math.Cos(2*math.Pi*mid)
			out = append(out, PhaseSpec{Rate: base * (1 + (peak-1)*f), Duration: segDur})
		}
	}
	return out
}

// PhasedUpdateGenerator produces a Poisson update stream whose rate
// follows a piecewise-constant schedule of PhaseSpec segments. Object
// selection, importance mix and network ages follow the paper's §5.1
// model exactly as UpdateGenerator does; only the arrival intensity
// is modulated. The stream ends (Next returns nil) when the schedule
// is exhausted, so the total number of updates is a deterministic
// function of the seed and the schedule.
type PhasedUpdateGenerator struct {
	params *model.Params
	rng    *stats.RNG
	phases []PhaseSpec
	clock  float64
	idx    int     // current segment
	segEnd float64 // absolute end time of the current segment
	seq    uint64
}

// NewPhasedUpdateGenerator returns a generator over the schedule. The
// params supply the object partitions and age model; the schedule
// supplies the rates.
func NewPhasedUpdateGenerator(p *model.Params, rng *stats.RNG, phases []PhaseSpec) *PhasedUpdateGenerator {
	g := &PhasedUpdateGenerator{params: p, rng: rng, phases: phases}
	if len(phases) > 0 {
		g.segEnd = phases[0].Duration
	}
	return g
}

// Next returns the next update in arrival order, or nil once the
// schedule is exhausted.
func (g *PhasedUpdateGenerator) Next() *model.Update {
	p := g.params
	for g.idx < len(g.phases) {
		rate := g.phases[g.idx].Rate
		if rate <= 0 {
			// A silent segment: jump to its end.
			g.clock = g.segEnd
			g.advance()
			continue
		}
		gap := g.rng.Exponential(1 / rate)
		if g.clock+gap >= g.segEnd {
			// The arrival would land past this segment; restart the
			// draw in the next one (exact, by memorylessness).
			g.clock = g.segEnd
			g.advance()
			continue
		}
		g.clock += gap
		class := model.High
		n := p.NHigh
		base := p.NLow
		if g.rng.Bernoulli(p.PUpdateLow) {
			class = model.Low
			n = p.NLow
			base = 0
		}
		if n == 0 {
			if class == model.Low {
				class, n, base = model.High, p.NHigh, p.NLow
			} else {
				class, n, base = model.Low, p.NLow, 0
			}
		}
		age := g.rng.Exponential(p.MeanUpdateAge)
		g.seq++
		return &model.Update{
			Seq:         g.seq,
			Object:      model.ObjectID(base + g.rng.IntN(n)),
			Class:       class,
			GenTime:     g.clock - age,
			ArrivalTime: g.clock,
		}
	}
	return nil
}

// advance moves to the next segment.
func (g *PhasedUpdateGenerator) advance() {
	g.idx++
	if g.idx < len(g.phases) {
		g.segEnd = g.clock + g.phases[g.idx].Duration
	}
}

// TotalDuration sums a schedule's segments, as a time.Duration of
// simulated seconds.
func TotalDuration(phases []PhaseSpec) time.Duration {
	var s float64
	for _, ph := range phases {
		s += ph.Duration
	}
	return time.Duration(s * float64(time.Second))
}
