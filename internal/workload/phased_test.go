package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/stats"
)

func drainPhased(p *model.Params, seed uint64, phases []PhaseSpec) []model.Update {
	rng := stats.NewRNG(seed, 0x9E3779B9)
	g := NewPhasedUpdateGenerator(p, rng, phases)
	var out []model.Update
	for u := g.Next(); u != nil; u = g.Next() {
		out = append(out, *u)
	}
	return out
}

// TestPhasedDeterminism: the full update stream is a pure function of
// the seed and the schedule — the property scenario transcripts lean on.
func TestPhasedDeterminism(t *testing.T) {
	p := model.DefaultParams()
	phases := FlashCrowdPhases(200, 5, 3, 1, 0.5)
	a := drainPhased(&p, 7, phases)
	b := drainPhased(&p, 7, phases)
	if len(a) == 0 {
		t.Fatal("generator produced nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, update %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := drainPhased(&p, 8, phases)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

// TestPhasedRateModulation: arrivals inside a spike segment must come
// at roughly the multiplied rate, and the whole stream must respect
// the schedule's total span and arrive in order.
func TestPhasedRateModulation(t *testing.T) {
	p := model.DefaultParams()
	const base, mult, total, spikeAt, spikeDur = 100.0, 6.0, 9.0, 3.0, 3.0
	phases := FlashCrowdPhases(base, mult, total, spikeAt, spikeDur)
	ups := drainPhased(&p, 11, phases)

	var before, spike, after int
	last := 0.0
	for _, u := range ups {
		if u.ArrivalTime < last {
			t.Fatalf("arrivals out of order at %v", u.ArrivalTime)
		}
		last = u.ArrivalTime
		switch {
		case u.ArrivalTime < spikeAt:
			before++
		case u.ArrivalTime < spikeAt+spikeDur:
			spike++
		default:
			after++
		}
	}
	if last > total {
		t.Fatalf("arrival at %v past the schedule's %v end", last, total)
	}
	// Expect ~300 / ~1800 / ~300; Poisson noise stays far inside 3x.
	if spike < 3*before || spike < 3*after {
		t.Fatalf("spike segment not elevated: before=%d spike=%d after=%d", before, spike, after)
	}
}

// TestPhasedSilentSegment: a zero-rate segment emits nothing and the
// stream resumes after it.
func TestPhasedSilentSegment(t *testing.T) {
	p := model.DefaultParams()
	phases := []PhaseSpec{
		{Rate: 200, Duration: 1},
		{Rate: 0, Duration: 2},
		{Rate: 200, Duration: 1},
	}
	for _, u := range drainPhased(&p, 5, phases) {
		if u.ArrivalTime >= 1 && u.ArrivalTime < 3 {
			t.Fatalf("arrival at %v inside the silent segment", u.ArrivalTime)
		}
	}
}

// TestDiurnalPhases: the schedule covers the requested span, never
// leaves the [base, base*peak] band, and actually reaches near both
// ends of it.
func TestDiurnalPhases(t *testing.T) {
	const base, peak, total = 50.0, 4.0, 12.0
	phases := DiurnalPhases(base, peak, total, 3, 8)
	if len(phases) != 24 {
		t.Fatalf("got %d segments, want 24", len(phases))
	}
	if d := TotalDuration(phases); d != 12*time.Second {
		t.Fatalf("total duration %v, want 12s", d)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ph := range phases {
		if ph.Rate < base-1e-9 || ph.Rate > base*peak+1e-9 {
			t.Fatalf("rate %v outside [%v, %v]", ph.Rate, base, base*peak)
		}
		lo, hi = math.Min(lo, ph.Rate), math.Max(hi, ph.Rate)
	}
	if lo > base*1.2 || hi < base*peak*0.8 {
		t.Fatalf("envelope barely swings: [%v, %v]", lo, hi)
	}
}

// TestFlashCrowdPhasesClamped: a spike running past the end is clamped
// to the total span instead of extending it.
func TestFlashCrowdPhasesClamped(t *testing.T) {
	phases := FlashCrowdPhases(100, 4, 2, 1.5, 5)
	if d := TotalDuration(phases); d != 2*time.Second {
		t.Fatalf("clamped schedule spans %v, want 2s", d)
	}
	if phases[len(phases)-1].Rate != 400 {
		t.Fatalf("clamped spike should end the schedule, got rate %v", phases[len(phases)-1].Rate)
	}
}
