package workload

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestUpdateGeneratorRateAndMix(t *testing.T) {
	p := model.DefaultParams()
	g := NewUpdateGenerator(&p, stats.NewRNG(1, 2))
	const n = 100000
	low := 0
	var lastArrival float64
	var ageSum float64
	for i := 0; i < n; i++ {
		u := g.Next()
		if u.ArrivalTime <= lastArrival && i > 0 {
			t.Fatal("arrival times must strictly increase")
		}
		lastArrival = u.ArrivalTime
		if u.Class == model.Low {
			low++
			if int(u.Object) < 0 || int(u.Object) >= p.NLow {
				t.Fatalf("low update targets object %d", u.Object)
			}
		} else if int(u.Object) < p.NLow || int(u.Object) >= p.NumObjects() {
			t.Fatalf("high update targets object %d", u.Object)
		}
		if u.Class != p.ObjectClass(u.Object) {
			t.Fatal("update class disagrees with object partition")
		}
		age := u.ArrivalTime - u.GenTime
		if age < 0 {
			t.Fatalf("negative network age %v", age)
		}
		ageSum += age
	}
	// Arrival rate: n updates over lastArrival seconds ≈ 400/s.
	rate := float64(n) / lastArrival
	if math.Abs(rate-400) > 10 {
		t.Fatalf("arrival rate = %v, want about 400", rate)
	}
	if mix := float64(low) / n; math.Abs(mix-0.5) > 0.01 {
		t.Fatalf("low mix = %v, want about 0.5", mix)
	}
	if meanAge := ageSum / n; math.Abs(meanAge-0.1) > 0.005 {
		t.Fatalf("mean age = %v, want about 0.1", meanAge)
	}
}

func TestUpdateGeneratorZeroRate(t *testing.T) {
	p := model.DefaultParams()
	p.UpdateRate = 0
	g := NewUpdateGenerator(&p, stats.NewRNG(1, 2))
	if g.Next() != nil {
		t.Fatal("zero-rate generator should return nil")
	}
}

func TestUpdateGeneratorEmptyPartitionFallback(t *testing.T) {
	p := model.DefaultParams()
	p.NLow = 0
	p.NHigh = 10
	g := NewUpdateGenerator(&p, stats.NewRNG(1, 2))
	for i := 0; i < 1000; i++ {
		u := g.Next()
		if u.Class != model.High {
			t.Fatal("updates must fall back to the non-empty partition")
		}
	}
}

func TestUpdateGeneratorDeterminism(t *testing.T) {
	p := model.DefaultParams()
	a := NewUpdateGenerator(&p, stats.NewRNG(5, 6))
	b := NewUpdateGenerator(&p, stats.NewRNG(5, 6))
	for i := 0; i < 1000; i++ {
		ua, ub := a.Next(), b.Next()
		if *ua != *ub {
			t.Fatalf("generators with equal seeds diverged at %d", i)
		}
	}
}

func TestUpdateSeqUnique(t *testing.T) {
	p := model.DefaultParams()
	g := NewUpdateGenerator(&p, stats.NewRNG(9, 9))
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		u := g.Next()
		if seen[u.Seq] {
			t.Fatalf("duplicate Seq %d", u.Seq)
		}
		seen[u.Seq] = true
	}
}

func TestPeriodicSourceCoversAllObjects(t *testing.T) {
	p := model.DefaultParams()
	p.NLow, p.NHigh = 5, 5
	src := NewPeriodicUpdateSource(&p, 1.0, stats.NewRNG(3, 4))
	counts := map[model.ObjectID]int{}
	var last float64
	for i := 0; i < 100; i++ {
		u := src.Next()
		if u.ArrivalTime < last {
			t.Fatal("periodic arrivals must be non-decreasing")
		}
		last = u.ArrivalTime
		counts[u.Object]++
	}
	// 100 refreshes over 10 objects with period 1: each object close
	// to 10 times.
	for obj, c := range counts {
		if c < 9 || c > 11 {
			t.Fatalf("object %d refreshed %d times, want about 10", obj, c)
		}
	}
	if len(counts) != 10 {
		t.Fatalf("only %d objects refreshed", len(counts))
	}
}

func TestTxnGeneratorShape(t *testing.T) {
	p := model.DefaultParams()
	g := NewTxnGenerator(&p, stats.NewRNG(11, 12))
	const n = 50000
	low := 0
	var compSum, valueLowSum, valueHighSum float64
	var lowCount, highCount int
	var readsSum float64
	var lastArrival float64
	for i := 0; i < n; i++ {
		txn := g.Next()
		if txn.ArrivalTime <= lastArrival && i > 0 {
			t.Fatal("txn arrivals must strictly increase")
		}
		lastArrival = txn.ArrivalTime
		if txn.Value <= 0 || txn.CompSeconds <= 0 {
			t.Fatalf("non-positive value %v or computation %v", txn.Value, txn.CompSeconds)
		}
		est := EstimateSeconds(&p, txn)
		slack := txn.Deadline - txn.ArrivalTime - est
		if slack < p.SlackMin-1e-9 || slack > p.SlackMax+1e-9 {
			t.Fatalf("slack %v outside [%v,%v]", slack, p.SlackMin, p.SlackMax)
		}
		for _, obj := range txn.ReadSet {
			if p.ObjectClass(obj) != txn.Class {
				t.Fatal("transaction reads outside its class partition")
			}
		}
		if txn.Class == model.Low {
			low++
			lowCount++
			valueLowSum += txn.Value
		} else {
			highCount++
			valueHighSum += txn.Value
		}
		compSum += txn.CompSeconds
		readsSum += float64(len(txn.ReadSet))
	}
	rate := float64(n) / lastArrival
	if math.Abs(rate-10) > 0.3 {
		t.Fatalf("txn rate = %v, want about 10", rate)
	}
	if mix := float64(low) / n; math.Abs(mix-0.5) > 0.01 {
		t.Fatalf("low mix = %v", mix)
	}
	if m := compSum / n; math.Abs(m-0.12) > 0.001 {
		t.Fatalf("mean computation = %v, want about 0.12", m)
	}
	if m := readsSum / n; m < 1.9 || m > 2.2 {
		t.Fatalf("mean reads = %v, want about 2", m)
	}
	// Truncation at zero pulls the means slightly above the nominal.
	if m := valueLowSum / float64(lowCount); m < 0.95 || m > 1.15 {
		t.Fatalf("low value mean = %v, want about 1.0", m)
	}
	if m := valueHighSum / float64(highCount); m < 1.95 || m > 2.1 {
		t.Fatalf("high value mean = %v, want about 2.0", m)
	}
}

func TestTxnGeneratorZeroRate(t *testing.T) {
	p := model.DefaultParams()
	p.TxnRate = 0
	g := NewTxnGenerator(&p, stats.NewRNG(1, 2))
	if g.Next() != nil {
		t.Fatal("zero-rate generator should return nil")
	}
}

func TestTxnGeneratorDeterminism(t *testing.T) {
	p := model.DefaultParams()
	a := NewTxnGenerator(&p, stats.NewRNG(7, 8))
	b := NewTxnGenerator(&p, stats.NewRNG(7, 8))
	for i := 0; i < 500; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.ID != tb.ID || ta.Value != tb.Value || ta.Deadline != tb.Deadline ||
			len(ta.ReadSet) != len(tb.ReadSet) {
			t.Fatalf("generators diverged at %d", i)
		}
	}
}

func TestEstimateSeconds(t *testing.T) {
	p := model.DefaultParams()
	txn := &model.Txn{CompSeconds: 0.1, ReadSet: make([]model.ObjectID, 3)}
	// 0.1 + 3*4000/50e6 = 0.10024
	if got, want := EstimateSeconds(&p, txn), 0.10024; math.Abs(got-want) > 1e-12 {
		t.Fatalf("estimate = %v, want %v", got, want)
	}
}

func TestTxnGeneratorPViewPropagates(t *testing.T) {
	p := model.DefaultParams()
	p.PView = 0.4
	g := NewTxnGenerator(&p, stats.NewRNG(1, 2))
	if txn := g.Next(); txn.PView != 0.4 {
		t.Fatalf("PView = %v", txn.PView)
	}
}

func TestBurstyGeneratorPreservesAverageRate(t *testing.T) {
	p := model.DefaultParams()
	for _, factor := range []float64{1, 2, 8} {
		g := NewBurstyUpdateGenerator(&p, stats.NewRNG(31, 32), factor, 4, 1)
		const n = 200000
		var last float64
		for i := 0; i < n; i++ {
			u := g.Next()
			if u.ArrivalTime < last {
				t.Fatal("bursty arrivals must be non-decreasing")
			}
			last = u.ArrivalTime
		}
		rate := float64(n) / last
		if math.Abs(rate-400)/400 > 0.05 {
			t.Fatalf("factor %v: average rate = %v, want about 400", factor, rate)
		}
	}
}

func TestBurstyGeneratorIsActuallyBursty(t *testing.T) {
	// Count arrivals in 100 ms windows; a bursty stream has a much
	// higher variance-to-mean ratio than Poisson (which has ~1).
	p := model.DefaultParams()
	vmr := func(factor float64) float64 {
		g := NewBurstyUpdateGenerator(&p, stats.NewRNG(7, 9), factor, 4, 1)
		counts := map[int]int{}
		maxWin := 0
		for i := 0; i < 200000; i++ {
			u := g.Next()
			w := int(u.ArrivalTime / 0.1)
			counts[w]++
			if w > maxWin {
				maxWin = w
			}
		}
		var s stats.Summary
		for w := 0; w < maxWin; w++ {
			s.Add(float64(counts[w]))
		}
		return s.Variance() / s.Mean()
	}
	poissonVMR := vmr(1)
	burstyVMR := vmr(8)
	if poissonVMR > 3 {
		t.Fatalf("factor-1 stream should be near-Poisson: VMR = %v", poissonVMR)
	}
	if burstyVMR < 5*poissonVMR {
		t.Fatalf("factor-8 stream should be strongly bursty: VMR %v vs %v",
			burstyVMR, poissonVMR)
	}
}

func TestBurstyGeneratorZeroRate(t *testing.T) {
	p := model.DefaultParams()
	p.UpdateRate = 0
	g := NewBurstyUpdateGenerator(&p, stats.NewRNG(1, 2), 4, 4, 1)
	if g.Next() != nil {
		t.Fatal("zero-rate bursty generator should return nil")
	}
}

func TestBurstyGeneratorDefensiveArgs(t *testing.T) {
	p := model.DefaultParams()
	g := NewBurstyUpdateGenerator(&p, stats.NewRNG(1, 2), 0.5, -1, 0)
	// Degenerate arguments are clamped; the stream still works.
	for i := 0; i < 1000; i++ {
		if g.Next() == nil {
			t.Fatal("clamped generator returned nil")
		}
	}
}

func TestBurstyGeneratorClassPartition(t *testing.T) {
	p := model.DefaultParams()
	g := NewBurstyUpdateGenerator(&p, stats.NewRNG(3, 5), 4, 4, 1)
	for i := 0; i < 5000; i++ {
		u := g.Next()
		if u.Class != p.ObjectClass(u.Object) {
			t.Fatal("bursty update class disagrees with partition")
		}
		if u.ArrivalTime < u.GenTime {
			t.Fatal("negative network age")
		}
	}
}
