// Package workload generates the update stream and the transaction
// load of §5.1 and §5.2: Poisson arrivals for both, exponentially
// distributed network ages for updates, two importance classes with
// configurable mixes, and normally distributed transaction values,
// read-set sizes and computation times.
package workload

import (
	"repro/internal/model"
	"repro/internal/stats"
)

// UpdateGenerator produces the external update stream. Each call to
// Next advances an exponential inter-arrival clock and fabricates the
// next update (§5.1).
type UpdateGenerator struct {
	params *model.Params
	rng    *stats.RNG
	clock  float64
	seq    uint64
}

// NewUpdateGenerator returns a generator driven by its own RNG stream.
func NewUpdateGenerator(p *model.Params, rng *stats.RNG) *UpdateGenerator {
	return &UpdateGenerator{params: p, rng: rng}
}

// Next returns the next update in arrival order, or nil if the update
// rate is zero. The update's ArrivalTime strictly increases across
// calls; GenTime is ArrivalTime minus an exponential network age and
// may precede time zero for early arrivals.
func (g *UpdateGenerator) Next() *model.Update {
	p := g.params
	if p.UpdateRate <= 0 {
		return nil
	}
	g.clock += g.rng.Exponential(1 / p.UpdateRate)
	class := model.High
	n := p.NHigh
	base := p.NLow
	if g.rng.Bernoulli(p.PUpdateLow) {
		class = model.Low
		n = p.NLow
		base = 0
	}
	if n == 0 {
		// The chosen partition is empty; fall back to the other.
		if class == model.Low {
			class, n, base = model.High, p.NHigh, p.NLow
		} else {
			class, n, base = model.Low, p.NLow, 0
		}
	}
	age := g.rng.Exponential(p.MeanUpdateAge)
	g.seq++
	return &model.Update{
		Seq:         g.seq,
		Object:      model.ObjectID(base + g.rng.IntN(n)),
		Class:       class,
		GenTime:     g.clock - age,
		ArrivalTime: g.clock,
	}
}

// PeriodicUpdateSource is the §2 extension: every object is refreshed
// on a fixed period (per-object phase-shifted so arrivals spread out),
// as in a plant-control system where sensors report on a schedule.
type PeriodicUpdateSource struct {
	params *model.Params
	rng    *stats.RNG
	period float64
	next   []float64
	seq    uint64
}

// NewPeriodicUpdateSource returns a source that refreshes each of the
// Nl+Nh objects every period seconds, with random initial phases.
func NewPeriodicUpdateSource(p *model.Params, period float64, rng *stats.RNG) *PeriodicUpdateSource {
	n := p.NumObjects()
	src := &PeriodicUpdateSource{
		params: p,
		rng:    rng,
		period: period,
		next:   make([]float64, n),
	}
	for i := range src.next {
		src.next[i] = rng.Uniform(0, period)
	}
	return src
}

// Next returns the earliest-due refresh across all objects.
func (s *PeriodicUpdateSource) Next() *model.Update {
	if len(s.next) == 0 {
		return nil
	}
	obj := 0
	for i, t := range s.next {
		if t < s.next[obj] {
			obj = i
		}
		_ = t
	}
	at := s.next[obj]
	s.next[obj] = at + s.period
	age := s.rng.Exponential(s.params.MeanUpdateAge)
	s.seq++
	return &model.Update{
		Seq:         s.seq,
		Object:      model.ObjectID(obj),
		Class:       s.params.ObjectClass(model.ObjectID(obj)),
		GenTime:     at - age,
		ArrivalTime: at,
	}
}

// BurstyUpdateGenerator is a Markov-modulated Poisson update source:
// it alternates exponentially distributed quiet and burst phases, with
// the burst arrival rate a multiple of the quiet one. §1 motivates it
// directly — market feeds run "up to 500 updates/second during peak
// time". The configured UpdateRate is preserved as the long-run
// average, so sweeping the burst factor isolates the effect of
// burstiness from the effect of load.
type BurstyUpdateGenerator struct {
	params    *model.Params
	rng       *stats.RNG
	clock     float64
	seq       uint64
	inBurst   bool
	phaseEnd  float64
	quietRate float64
	burstRate float64
	meanQuiet float64
	meanBurst float64
}

// NewBurstyUpdateGenerator returns a bursty source. factor is the
// burst-to-quiet rate ratio (>= 1); meanQuiet and meanBurst are the
// mean phase durations in seconds.
func NewBurstyUpdateGenerator(p *model.Params, rng *stats.RNG,
	factor, meanQuiet, meanBurst float64) *BurstyUpdateGenerator {
	if factor < 1 {
		factor = 1
	}
	if meanQuiet <= 0 {
		meanQuiet = 1
	}
	if meanBurst <= 0 {
		meanBurst = 1
	}
	// Long-run average = quietRate·(1-f) + factor·quietRate·f where
	// f is the burst time fraction; solve for quietRate so the
	// average equals the configured UpdateRate.
	f := meanBurst / (meanQuiet + meanBurst)
	quietRate := p.UpdateRate / (1 - f + factor*f)
	g := &BurstyUpdateGenerator{
		params:    p,
		rng:       rng,
		quietRate: quietRate,
		burstRate: quietRate * factor,
		meanQuiet: meanQuiet,
		meanBurst: meanBurst,
	}
	g.phaseEnd = rng.Exponential(meanQuiet)
	return g
}

// Next returns the next update in arrival order, or nil if the
// average rate is zero.
func (g *BurstyUpdateGenerator) Next() *model.Update {
	p := g.params
	if p.UpdateRate <= 0 {
		return nil
	}
	// Advance through phase boundaries until an arrival lands inside
	// the current phase.
	for {
		rate := g.quietRate
		if g.inBurst {
			rate = g.burstRate
		}
		gap := g.rng.Exponential(1 / rate)
		if g.clock+gap <= g.phaseEnd {
			g.clock += gap
			break
		}
		// The arrival would fall past the phase end: restart the
		// draw in the next phase (memorylessness makes this exact).
		g.clock = g.phaseEnd
		g.inBurst = !g.inBurst
		if g.inBurst {
			g.phaseEnd = g.clock + g.rng.Exponential(g.meanBurst)
		} else {
			g.phaseEnd = g.clock + g.rng.Exponential(g.meanQuiet)
		}
	}

	class := model.High
	n := p.NHigh
	base := p.NLow
	if g.rng.Bernoulli(p.PUpdateLow) {
		class = model.Low
		n = p.NLow
		base = 0
	}
	if n == 0 {
		if class == model.Low {
			class, n, base = model.High, p.NHigh, p.NLow
		} else {
			class, n, base = model.Low, p.NLow, 0
		}
	}
	age := g.rng.Exponential(p.MeanUpdateAge)
	g.seq++
	return &model.Update{
		Seq:         g.seq,
		Object:      model.ObjectID(base + g.rng.IntN(n)),
		Class:       class,
		GenTime:     g.clock - age,
		ArrivalTime: g.clock,
	}
}

// TxnGenerator produces the transaction load (§5.2).
type TxnGenerator struct {
	params *model.Params
	rng    *stats.RNG
	clock  float64
	seq    uint64
}

// NewTxnGenerator returns a generator driven by its own RNG stream.
func NewTxnGenerator(p *model.Params, rng *stats.RNG) *TxnGenerator {
	return &TxnGenerator{params: p, rng: rng}
}

// EstimateSeconds returns the perfect execution-time estimate for a
// transaction: computation plus one lookup per view read (§5.3). The
// paper assumes perfect estimation, so deadline assignment and the
// feasible-deadline test both use this.
func EstimateSeconds(p *model.Params, txn *model.Txn) float64 {
	return txn.CompSeconds + p.Seconds(float64(len(txn.ReadSet))*p.XLookup)
}

// Next returns the next transaction in arrival order, or nil if the
// transaction rate is zero.
func (g *TxnGenerator) Next() *model.Txn {
	p := g.params
	if p.TxnRate <= 0 {
		return nil
	}
	g.clock += g.rng.Exponential(1 / p.TxnRate)

	class := model.High
	valueMean, valueStd := p.ValueHighMean, p.ValueHighStd
	n, base := p.NHigh, p.NLow
	if g.rng.Bernoulli(p.PTxnLow) {
		class = model.Low
		valueMean, valueStd = p.ValueLowMean, p.ValueLowStd
		n, base = p.NLow, 0
	}
	if n == 0 {
		if class == model.Low {
			n, base = p.NHigh, p.NLow
		} else {
			n, base = p.NLow, 0
		}
	}

	reads := g.rng.NonNegativeCount(p.ReadsMean, p.ReadsStd)
	readSet := make([]model.ObjectID, reads)
	for i := range readSet {
		readSet[i] = model.ObjectID(base + g.rng.IntN(n))
	}

	g.seq++
	txn := &model.Txn{
		ID:          g.seq,
		Class:       class,
		Value:       g.rng.PositiveNormal(valueMean, valueStd),
		ArrivalTime: g.clock,
		CompSeconds: g.rng.PositiveNormal(p.CompMean, p.CompStd),
		ReadSet:     readSet,
		PView:       p.PView,
	}
	slack := g.rng.Uniform(p.SlackMin, p.SlackMax)
	txn.Deadline = txn.ArrivalTime + EstimateSeconds(p, txn) + slack
	return txn
}
