package workload

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestTraceSourceParsesValidTrace(t *testing.T) {
	p := model.DefaultParams()
	trace := `# a comment
0.1 0.05 3

0.2 0.2 999
0.5 0.4 0
`
	src := NewTraceUpdateSource(&p, strings.NewReader(trace))
	var got []*model.Update
	for u := src.Next(); u != nil; u = src.Next() {
		got = append(got, u)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d updates, want 3", len(got))
	}
	if got[0].Object != 3 || got[0].ArrivalTime != 0.1 || got[0].GenTime != 0.05 {
		t.Fatalf("first update = %+v", got[0])
	}
	if got[1].Class != model.High {
		t.Fatal("object 999 should be high importance")
	}
	if got[0].Seq == got[1].Seq {
		t.Fatal("sequence numbers must be unique")
	}
}

func TestTraceSourceErrors(t *testing.T) {
	p := model.DefaultParams()
	cases := map[string]string{
		"field count":      "0.1 0.05\n",
		"bad arrival":      "x 0.05 3\n",
		"bad generation":   "0.1 x 3\n",
		"bad object":       "0.1 0.05 x\n",
		"object range":     "0.1 0.05 1000\n",
		"negative object":  "0.1 0.05 -1\n",
		"arrival regress":  "0.5 0.4 1\n0.2 0.1 1\n",
		"gen after arrive": "0.1 0.2 1\n",
	}
	for name, trace := range cases {
		src := NewTraceUpdateSource(&p, strings.NewReader(trace))
		for u := src.Next(); u != nil; u = src.Next() {
		}
		if src.Err() == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	p := model.DefaultParams()
	gen := NewUpdateGenerator(&p, stats.NewRNG(1, 2))
	var sb strings.Builder
	var want []*model.Update
	for i := 0; i < 500; i++ {
		u := gen.Next()
		want = append(want, u)
		sb.WriteString(WriteTraceLine(u) + "\n")
	}
	src := NewTraceUpdateSource(&p, strings.NewReader(sb.String()))
	for i, w := range want {
		g := src.Next()
		if g == nil {
			t.Fatalf("trace ended early at %d: %v", i, src.Err())
		}
		if g.Object != w.Object || g.ArrivalTime != w.ArrivalTime || g.GenTime != w.GenTime {
			t.Fatalf("update %d mismatch: %+v vs %+v", i, g, w)
		}
	}
	if src.Next() != nil || src.Err() != nil {
		t.Fatalf("trace should end cleanly: %v", src.Err())
	}
}
