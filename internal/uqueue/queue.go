package uqueue

import "repro/internal/model"

// Queue is the interface the scheduler uses to buffer unapplied
// updates. Implementations keep updates ordered by generation time.
//
// Insert may evict updates to respect a capacity bound or a coalescing
// rule; every update that leaves the queue without being installed is
// returned so the caller can account for it (the UU staleness tracker
// must observe every enqueue and dequeue).
type Queue interface {
	// Insert adds u and returns any updates evicted as a consequence
	// (capacity overflow or coalescing). The returned slice never
	// contains u itself unless u was rejected outright (possible in a
	// coalescing queue when a newer update for the object is already
	// queued).
	Insert(u *model.Update) (evicted []*model.Update)
	// Len returns the number of queued updates.
	Len() int
	// PeekOldest returns the oldest-generation update, or nil.
	PeekOldest() *model.Update
	// PeekNewest returns the newest-generation update, or nil.
	PeekNewest() *model.Update
	// PopOldest removes and returns the oldest-generation update
	// (FIFO service), or nil.
	PopOldest() *model.Update
	// PopNewest removes and returns the newest-generation update
	// (LIFO service), or nil.
	PopNewest() *model.Update
	// NewestFor returns the newest queued update for an object
	// without removing it, or nil.
	NewestFor(id model.ObjectID) *model.Update
	// TakeFor removes every queued update for the object and returns
	// the newest one plus the superseded remainder (every removed
	// update except the newest). It is the On Demand refresh
	// operation: apply the newest, discard the superseded — returned
	// individually so the caller can account for each one (class
	// counts, replication lag).
	TakeFor(id model.ObjectID) (newest *model.Update, superseded []*model.Update)
	// DiscardOlderGen removes every update whose generation time is
	// strictly before cutoff (MA expiry at a scheduling point) and
	// returns them in generation order.
	DiscardOlderGen(cutoff float64) []*model.Update
	// CountFor returns the number of queued updates for an object.
	CountFor(id model.ObjectID) int
}

// GenQueue is the paper's baseline update queue: all received,
// unapplied updates ordered by generation time, with a per-object
// index used by On Demand, bounded at capacity (oldest dropped on
// overflow).
type GenQueue struct {
	t     *treap
	byObj map[model.ObjectID][]*model.Update
	cap   int
}

var _ Queue = (*GenQueue)(nil)

// NewGenQueue returns a queue bounded at capacity updates; capacity <= 0
// means unbounded. The seed makes the internal balancing deterministic.
func NewGenQueue(capacity int, seed uint64) *GenQueue {
	return &GenQueue{
		t:     newTreap(seed),
		byObj: make(map[model.ObjectID][]*model.Update),
		cap:   capacity,
	}
}

// Insert adds u; if the queue exceeds its capacity the oldest update
// is evicted and returned (§4.2: "discard the oldest updates when the
// maximum queue size has been exceeded").
func (q *GenQueue) Insert(u *model.Update) []*model.Update {
	q.t.insert(u)
	q.byObj[u.Object] = append(q.byObj[u.Object], u)
	if q.cap > 0 && q.t.len() > q.cap {
		if old := q.PopOldest(); old != nil {
			//striplint:ignore alloc-in-hotpath -- eviction slice is the Queue API contract; overflow is the capacity exception, not the steady state
			return []*model.Update{old}
		}
	}
	return nil
}

// Len returns the number of queued updates.
func (q *GenQueue) Len() int { return q.t.len() }

// PeekOldest returns the oldest-generation update without removing it.
func (q *GenQueue) PeekOldest() *model.Update { return q.t.min() }

// PeekNewest returns the newest-generation update without removing it.
func (q *GenQueue) PeekNewest() *model.Update { return q.t.max() }

// PopOldest removes and returns the oldest-generation update.
func (q *GenQueue) PopOldest() *model.Update {
	u := q.t.min()
	if u == nil {
		return nil
	}
	q.removeExact(u)
	return u
}

// PopNewest removes and returns the newest-generation update.
func (q *GenQueue) PopNewest() *model.Update {
	u := q.t.max()
	if u == nil {
		return nil
	}
	q.removeExact(u)
	return u
}

func (q *GenQueue) removeExact(u *model.Update) {
	q.t.remove(u)
	list := q.byObj[u.Object]
	for i, cand := range list {
		if cand.Seq == u.Seq {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(q.byObj, u.Object)
	} else {
		q.byObj[u.Object] = list
	}
}

// NewestFor returns the newest queued update for the object, or nil.
func (q *GenQueue) NewestFor(id model.ObjectID) *model.Update {
	var newest *model.Update
	for _, u := range q.byObj[id] {
		if newest == nil || less(newest, u) {
			newest = u
		}
	}
	return newest
}

// CountFor returns the number of queued updates for the object.
func (q *GenQueue) CountFor(id model.ObjectID) int { return len(q.byObj[id]) }

// TakeFor removes all updates for the object, returning the newest
// and the superseded remainder.
func (q *GenQueue) TakeFor(id model.ObjectID) (*model.Update, []*model.Update) {
	list := q.byObj[id]
	if len(list) == 0 {
		return nil, nil
	}
	var newest *model.Update
	for _, u := range list {
		q.t.remove(u)
		if newest == nil || less(newest, u) {
			newest = u
		}
	}
	var superseded []*model.Update
	if len(list) > 1 {
		superseded = make([]*model.Update, 0, len(list)-1)
		for _, u := range list {
			if u != newest {
				superseded = append(superseded, u)
			}
		}
	}
	delete(q.byObj, id)
	return newest, superseded
}

// DiscardOlderGen removes every update generated strictly before
// cutoff. Because the queue is generation ordered this is a pop-min
// loop, constant work per discarded update.
func (q *GenQueue) DiscardOlderGen(cutoff float64) []*model.Update {
	var out []*model.Update
	for {
		u := q.t.min()
		if u == nil || u.GenTime >= cutoff {
			return out
		}
		q.removeExact(u)
		//striplint:ignore alloc-in-hotpath -- expiry sweep output: the count is unknowable in advance and amortized against the discarded work
		out = append(out, u)
	}
}

// Walk visits every queued update in generation order. It is used by
// tests and by the UU-strict staleness tracker.
func (q *GenQueue) Walk(visit func(*model.Update)) { q.t.walk(visit) }

// CoalescedQueue is the paper's proposed hash-indexed queue (§4.2, §7):
// for complete updates to snapshot views only the newest update per
// object matters, so the queue stores at most one update per object.
// Superseded and rejected updates are reported as evictions.
type CoalescedQueue struct {
	t     *treap
	byObj map[model.ObjectID]*model.Update
	cap   int
}

var _ Queue = (*CoalescedQueue)(nil)

// NewCoalescedQueue returns a coalescing queue bounded at capacity
// objects; capacity <= 0 means unbounded.
func NewCoalescedQueue(capacity int, seed uint64) *CoalescedQueue {
	return &CoalescedQueue{
		t:     newTreap(seed),
		byObj: make(map[model.ObjectID]*model.Update),
		cap:   capacity,
	}
}

// Insert adds u unless a newer update for the same object is already
// queued (then u itself is returned as evicted). An older queued
// update for the object is replaced and returned.
func (q *CoalescedQueue) Insert(u *model.Update) []*model.Update {
	if prev, ok := q.byObj[u.Object]; ok {
		if !less(prev, u) {
			// The queued update is at least as new: reject u.
			//striplint:ignore alloc-in-hotpath -- eviction slice is the Queue API contract; the caller must account for the rejected update
			return []*model.Update{u}
		}
		q.t.remove(prev)
		q.t.insert(u)
		q.byObj[u.Object] = u
		//striplint:ignore alloc-in-hotpath -- eviction slice is the Queue API contract; the caller must account for the superseded update
		return []*model.Update{prev}
	}
	q.t.insert(u)
	q.byObj[u.Object] = u
	if q.cap > 0 && q.t.len() > q.cap {
		if old := q.PopOldest(); old != nil {
			//striplint:ignore alloc-in-hotpath -- eviction slice is the Queue API contract; overflow is the capacity exception, not the steady state
			return []*model.Update{old}
		}
	}
	return nil
}

// Len returns the number of queued updates (= distinct objects).
func (q *CoalescedQueue) Len() int { return q.t.len() }

// PeekOldest returns the oldest-generation update without removing it.
func (q *CoalescedQueue) PeekOldest() *model.Update { return q.t.min() }

// PeekNewest returns the newest-generation update without removing it.
func (q *CoalescedQueue) PeekNewest() *model.Update { return q.t.max() }

// PopOldest removes and returns the oldest-generation update.
func (q *CoalescedQueue) PopOldest() *model.Update {
	u := q.t.min()
	if u == nil {
		return nil
	}
	q.t.remove(u)
	delete(q.byObj, u.Object)
	return u
}

// PopNewest removes and returns the newest-generation update.
func (q *CoalescedQueue) PopNewest() *model.Update {
	u := q.t.max()
	if u == nil {
		return nil
	}
	q.t.remove(u)
	delete(q.byObj, u.Object)
	return u
}

// NewestFor returns the queued update for the object, if any. This is
// the O(1) lookup the paper's hash-table proposal enables.
func (q *CoalescedQueue) NewestFor(id model.ObjectID) *model.Update {
	return q.byObj[id]
}

// CountFor returns 1 if an update for the object is queued, else 0.
func (q *CoalescedQueue) CountFor(id model.ObjectID) int {
	if _, ok := q.byObj[id]; ok {
		return 1
	}
	return 0
}

// TakeFor removes and returns the update for the object, if any; a
// coalescing queue never holds superseded updates.
func (q *CoalescedQueue) TakeFor(id model.ObjectID) (*model.Update, []*model.Update) {
	u, ok := q.byObj[id]
	if !ok {
		return nil, nil
	}
	q.t.remove(u)
	delete(q.byObj, id)
	return u, nil
}

// DiscardOlderGen removes every update generated strictly before cutoff.
func (q *CoalescedQueue) DiscardOlderGen(cutoff float64) []*model.Update {
	var out []*model.Update
	for {
		u := q.t.min()
		if u == nil || u.GenTime >= cutoff {
			return out
		}
		q.t.remove(u)
		delete(q.byObj, u.Object)
		//striplint:ignore alloc-in-hotpath -- expiry sweep output: the count is unknowable in advance and amortized against the discarded work
		out = append(out, u)
	}
}
