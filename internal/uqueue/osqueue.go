package uqueue

import "repro/internal/model"

// OSQueue models the kernel-side message queue of Fig. 2 (step 2): a
// small bounded FIFO that holds updates between network arrival and
// the controller's receive. It only supports head removal — the paper
// notes that applications cannot search or reorder an OS queue — and
// drops arrivals when full.
type OSQueue struct {
	buf     []*model.Update
	head    int
	n       int
	dropped uint64
}

// NewOSQueue returns an OS queue with the given capacity (OSmax).
// Capacity must be positive.
func NewOSQueue(capacity int) *OSQueue {
	if capacity <= 0 {
		panic("uqueue: OS queue capacity must be positive")
	}
	return &OSQueue{buf: make([]*model.Update, capacity)}
}

// Offer appends u if there is room and reports whether it was
// accepted. A full queue drops the arrival (and counts it).
func (q *OSQueue) Offer(u *model.Update) bool {
	if q.n == len(q.buf) {
		q.dropped++
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = u
	q.n++
	return true
}

// Poll removes and returns the update at the head, or nil when empty.
func (q *OSQueue) Poll() *model.Update {
	if q.n == 0 {
		return nil
	}
	u := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return u
}

// Peek returns the head without removing it, or nil when empty.
func (q *OSQueue) Peek() *model.Update {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Len returns the number of queued updates.
func (q *OSQueue) Len() int { return q.n }

// Cap returns the configured capacity.
func (q *OSQueue) Cap() int { return len(q.buf) }

// Dropped returns the number of arrivals rejected because the queue
// was full.
func (q *OSQueue) Dropped() uint64 { return q.dropped }
