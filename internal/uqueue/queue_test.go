package uqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func upd(seq uint64, obj model.ObjectID, gen float64) *model.Update {
	return &model.Update{Seq: seq, Object: obj, GenTime: gen, ArrivalTime: gen + 0.1}
}

func TestGenQueueFIFOOrder(t *testing.T) {
	q := NewGenQueue(0, 1)
	// Insert out of generation order.
	q.Insert(upd(1, 0, 5))
	q.Insert(upd(2, 1, 3))
	q.Insert(upd(3, 2, 9))
	q.Insert(upd(4, 3, 1))
	var gens []float64
	for q.Len() > 0 {
		gens = append(gens, q.PopOldest().GenTime)
	}
	if !sort.Float64sAreSorted(gens) || len(gens) != 4 {
		t.Fatalf("FIFO order wrong: %v", gens)
	}
}

func TestGenQueueLIFOOrder(t *testing.T) {
	q := NewGenQueue(0, 1)
	for i, g := range []float64{5, 3, 9, 1} {
		q.Insert(upd(uint64(i), model.ObjectID(i), g))
	}
	var gens []float64
	for q.Len() > 0 {
		gens = append(gens, q.PopNewest().GenTime)
	}
	want := []float64{9, 5, 3, 1}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("LIFO order = %v, want %v", gens, want)
		}
	}
}

func TestGenQueueTieBreakBySeq(t *testing.T) {
	q := NewGenQueue(0, 1)
	q.Insert(upd(10, 0, 2))
	q.Insert(upd(11, 1, 2))
	q.Insert(upd(12, 2, 2))
	if got := q.PopOldest().Seq; got != 10 {
		t.Fatalf("oldest of tied generations Seq = %d, want 10", got)
	}
	if got := q.PopNewest().Seq; got != 12 {
		t.Fatalf("newest of tied generations Seq = %d, want 12", got)
	}
}

func TestGenQueuePeekDoesNotRemove(t *testing.T) {
	q := NewGenQueue(0, 1)
	q.Insert(upd(1, 0, 2))
	if q.PeekOldest() == nil || q.Len() != 1 {
		t.Fatal("PeekOldest should not remove")
	}
}

func TestGenQueueEmptyOps(t *testing.T) {
	q := NewGenQueue(0, 1)
	if q.PopOldest() != nil || q.PopNewest() != nil || q.PeekOldest() != nil {
		t.Fatal("pops on empty queue should return nil")
	}
	if u, sup := q.TakeFor(3); u != nil || len(sup) != 0 {
		t.Fatal("TakeFor on empty queue should be empty")
	}
	if got := q.DiscardOlderGen(100); len(got) != 0 {
		t.Fatal("DiscardOlderGen on empty queue should be empty")
	}
}

func TestGenQueueCapacityEvictsOldest(t *testing.T) {
	q := NewGenQueue(3, 1)
	for i := 0; i < 3; i++ {
		if ev := q.Insert(upd(uint64(i), model.ObjectID(i), float64(i))); ev != nil {
			t.Fatalf("unexpected eviction at insert %d", i)
		}
	}
	ev := q.Insert(upd(9, 9, 9))
	if len(ev) != 1 || ev[0].GenTime != 0 {
		t.Fatalf("eviction = %v, want the oldest (gen 0)", ev)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
}

func TestGenQueueNewestFor(t *testing.T) {
	q := NewGenQueue(0, 1)
	q.Insert(upd(1, 7, 1))
	q.Insert(upd(2, 7, 5))
	q.Insert(upd(3, 7, 3))
	q.Insert(upd(4, 8, 9))
	if got := q.NewestFor(7); got == nil || got.GenTime != 5 {
		t.Fatalf("NewestFor(7) = %+v, want gen 5", got)
	}
	if got := q.NewestFor(99); got != nil {
		t.Fatalf("NewestFor(absent) = %+v", got)
	}
	if got := q.CountFor(7); got != 3 {
		t.Fatalf("CountFor(7) = %d, want 3", got)
	}
}

func TestGenQueueTakeFor(t *testing.T) {
	q := NewGenQueue(0, 1)
	q.Insert(upd(1, 7, 1))
	q.Insert(upd(2, 7, 5))
	q.Insert(upd(3, 8, 3))
	newest, sup := q.TakeFor(7)
	if newest == nil || newest.GenTime != 5 || len(sup) != 1 {
		t.Fatalf("TakeFor = (%+v, %d superseded), want (gen 5, 1)", newest, len(sup))
	}
	if sup[0].GenTime != 1 {
		t.Fatalf("superseded gen = %v, want 1", sup[0].GenTime)
	}
	if q.Len() != 1 || q.CountFor(7) != 0 {
		t.Fatalf("queue after TakeFor: len=%d countFor7=%d", q.Len(), q.CountFor(7))
	}
	// The remaining update for object 8 must still be reachable.
	if got := q.NewestFor(8); got == nil || got.GenTime != 3 {
		t.Fatalf("NewestFor(8) = %+v", got)
	}
}

func TestGenQueueDiscardOlderGen(t *testing.T) {
	q := NewGenQueue(0, 1)
	for i, g := range []float64{1, 2, 3, 4, 5} {
		q.Insert(upd(uint64(i), model.ObjectID(i), g))
	}
	out := q.DiscardOlderGen(3)
	if len(out) != 2 || out[0].GenTime != 1 || out[1].GenTime != 2 {
		t.Fatalf("discarded = %v", out)
	}
	// Cutoff is exclusive: gen 3 stays.
	if q.Len() != 3 || q.PeekOldest().GenTime != 3 {
		t.Fatalf("after discard: len=%d oldest=%v", q.Len(), q.PeekOldest())
	}
}

func TestGenQueueWalkInOrder(t *testing.T) {
	q := NewGenQueue(0, 42)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		q.Insert(upd(uint64(i), model.ObjectID(i%10), r.Float64()*100))
	}
	var gens []float64
	q.Walk(func(u *model.Update) { gens = append(gens, u.GenTime) })
	if len(gens) != 200 || !sort.Float64sAreSorted(gens) {
		t.Fatalf("Walk visited %d items, sorted=%v", len(gens), sort.Float64sAreSorted(gens))
	}
}

func TestQuickGenQueueInvariants(t *testing.T) {
	// Under a random op sequence: size is consistent, pops come out in
	// generation order, and the per-object index agrees with a naive
	// shadow implementation.
	type op struct {
		kind byte
		obj  model.ObjectID
		gen  float64
	}
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewGenQueue(0, uint64(seed)+1)
		shadow := map[uint64]*model.Update{}
		var seq uint64
		for i := 0; i < int(nOps)*4; i++ {
			switch r.Intn(4) {
			case 0, 1: // insert
				u := upd(seq, model.ObjectID(r.Intn(5)), float64(r.Intn(50)))
				seq++
				q.Insert(u)
				shadow[u.Seq] = u
			case 2: // pop oldest
				u := q.PopOldest()
				if u == nil {
					if len(shadow) != 0 {
						return false
					}
					continue
				}
				for _, s := range shadow {
					if s.GenTime < u.GenTime {
						return false // popped non-minimum
					}
				}
				delete(shadow, u.Seq)
			case 3: // take for object
				obj := model.ObjectID(r.Intn(5))
				newest, sup := q.TakeFor(obj)
				cnt := 0
				var want *model.Update
				for _, s := range shadow {
					if s.Object == obj {
						cnt++
						if want == nil || less(want, s) {
							want = s
						}
					}
				}
				n := len(sup)
				if newest != nil {
					n++
				}
				if n != cnt {
					return false
				}
				if cnt > 0 && (newest == nil || newest.Seq != want.Seq) {
					return false
				}
				for k, s := range shadow {
					if s.Object == obj {
						delete(shadow, k)
					}
				}
			}
			if q.Len() != len(shadow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	_ = op{}
}

func TestCoalescedQueueKeepsNewestPerObject(t *testing.T) {
	q := NewCoalescedQueue(0, 1)
	q.Insert(upd(1, 7, 1))
	ev := q.Insert(upd(2, 7, 5)) // newer: replaces
	if len(ev) != 1 || ev[0].Seq != 1 {
		t.Fatalf("replacing insert evicted %v", ev)
	}
	ev = q.Insert(upd(3, 7, 3)) // older: rejected
	if len(ev) != 1 || ev[0].Seq != 3 {
		t.Fatalf("stale insert evicted %v, want the incoming update", ev)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if got := q.NewestFor(7); got.GenTime != 5 {
		t.Fatalf("NewestFor = gen %v, want 5", got.GenTime)
	}
}

func TestCoalescedQueueOrdering(t *testing.T) {
	q := NewCoalescedQueue(0, 1)
	q.Insert(upd(1, 1, 5))
	q.Insert(upd(2, 2, 3))
	q.Insert(upd(3, 3, 9))
	if got := q.PopOldest(); got.Object != 2 {
		t.Fatalf("PopOldest object = %d, want 2", got.Object)
	}
	if got := q.PopNewest(); got.Object != 3 {
		t.Fatalf("PopNewest object = %d, want 3", got.Object)
	}
	if got := q.PeekOldest(); got.Object != 1 {
		t.Fatalf("PeekOldest object = %d, want 1", got.Object)
	}
}

func TestCoalescedQueueTakeForAndCount(t *testing.T) {
	q := NewCoalescedQueue(0, 1)
	q.Insert(upd(1, 7, 1))
	if q.CountFor(7) != 1 || q.CountFor(8) != 0 {
		t.Fatal("CountFor wrong")
	}
	u, sup := q.TakeFor(7)
	if u == nil || len(sup) != 0 || q.Len() != 0 {
		t.Fatalf("TakeFor = (%v, %d superseded)", u, len(sup))
	}
	u, sup = q.TakeFor(7)
	if u != nil || len(sup) != 0 {
		t.Fatal("second TakeFor should be empty")
	}
}

func TestCoalescedQueueCapacity(t *testing.T) {
	q := NewCoalescedQueue(2, 1)
	q.Insert(upd(1, 1, 1))
	q.Insert(upd(2, 2, 2))
	ev := q.Insert(upd(3, 3, 3))
	if len(ev) != 1 || ev[0].Object != 1 {
		t.Fatalf("capacity eviction = %v, want object 1", ev)
	}
}

func TestCoalescedQueueDiscardOlderGen(t *testing.T) {
	q := NewCoalescedQueue(0, 1)
	q.Insert(upd(1, 1, 1))
	q.Insert(upd(2, 2, 5))
	out := q.DiscardOlderGen(3)
	if len(out) != 1 || out[0].Object != 1 {
		t.Fatalf("discarded = %v", out)
	}
	if q.NewestFor(1) != nil {
		t.Fatal("discarded object still indexed")
	}
}

func TestQuickCoalescedMatchesGenQueueNewest(t *testing.T) {
	// For any insert sequence, the coalesced queue's per-object view
	// must equal the newest-per-object of an unbounded GenQueue.
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		cq := NewCoalescedQueue(0, 3)
		gq := NewGenQueue(0, 4)
		var seq uint64
		for i := 0; i < int(nOps)*2; i++ {
			u := upd(seq, model.ObjectID(r.Intn(4)), float64(r.Intn(30)))
			seq++
			cq.Insert(u)
			gq.Insert(upd(u.Seq, u.Object, u.GenTime))
		}
		for obj := model.ObjectID(0); obj < 4; obj++ {
			want := gq.NewestFor(obj)
			got := cq.NewestFor(obj)
			if (want == nil) != (got == nil) {
				return false
			}
			if want != nil && (want.Seq != got.Seq || want.GenTime != got.GenTime) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOSQueueFIFO(t *testing.T) {
	q := NewOSQueue(4)
	for i := 0; i < 3; i++ {
		if !q.Offer(upd(uint64(i), 0, float64(i))) {
			t.Fatalf("Offer %d rejected", i)
		}
	}
	if q.Len() != 3 || q.Cap() != 4 {
		t.Fatalf("Len/Cap = %d/%d", q.Len(), q.Cap())
	}
	if q.Peek().Seq != 0 {
		t.Fatal("Peek should return head")
	}
	for i := 0; i < 3; i++ {
		if got := q.Poll(); got.Seq != uint64(i) {
			t.Fatalf("Poll %d returned seq %d", i, got.Seq)
		}
	}
	if q.Poll() != nil || q.Peek() != nil {
		t.Fatal("empty queue should return nil")
	}
}

func TestOSQueueDropsWhenFull(t *testing.T) {
	q := NewOSQueue(2)
	q.Offer(upd(1, 0, 0))
	q.Offer(upd(2, 0, 0))
	if q.Offer(upd(3, 0, 0)) {
		t.Fatal("Offer on full queue accepted")
	}
	if q.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Dropped())
	}
	// Wrap-around: poll one, offer one.
	q.Poll()
	if !q.Offer(upd(4, 0, 0)) {
		t.Fatal("Offer after Poll rejected")
	}
	if got := q.Poll(); got.Seq != 2 {
		t.Fatalf("head after wrap = %d, want 2", got.Seq)
	}
	if got := q.Poll(); got.Seq != 4 {
		t.Fatalf("next after wrap = %d, want 4", got.Seq)
	}
}

func TestOSQueueZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOSQueue(0) should panic")
		}
	}()
	NewOSQueue(0)
}

func TestQuickOSQueueFIFOProperty(t *testing.T) {
	f := func(offers []uint8) bool {
		q := NewOSQueue(8)
		var want []uint64
		for i, b := range offers {
			if b%2 == 0 {
				u := upd(uint64(i), 0, 0)
				if q.Offer(u) {
					want = append(want, u.Seq)
				}
			} else if len(want) > 0 {
				got := q.Poll()
				if got == nil || got.Seq != want[0] {
					return false
				}
				want = want[1:]
			} else if q.Poll() != nil {
				return false
			}
		}
		return q.Len() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
