// Package uqueue implements the update-queue structures of §3.3: a
// generation-time-ordered queue supporting FIFO (oldest generation)
// and LIFO (newest generation) service, per-object search for the
// On Demand algorithm, constant-time discard of expired updates from
// the old end, and bounded capacity; a bounded kernel-side OS queue;
// and the paper's proposed (§4.2/§7 future work) hash-coalescing queue
// that stores at most the newest update per object.
package uqueue

import "repro/internal/model"

// treap is a randomized balanced BST keyed by (GenTime, Seq). The
// priorities come from a deterministic xorshift stream so that queue
// behaviour is reproducible run to run.
type treap struct {
	root     *node
	rngState uint64
	size     int
	// free is a recycled-node list threaded through right pointers:
	// remove pushes, insert pops. A queue oscillating around a steady
	// depth allocates no nodes after warm-up, which keeps the
	// per-update scheduler path allocation-free. Recycling is purely
	// LIFO on removal order, so it is as deterministic as the treap
	// itself.
	free *node
}

type node struct {
	update   *model.Update
	priority uint64
	left     *node
	right    *node
}

func newTreap(seed uint64) *treap {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &treap{rngState: seed}
}

func (t *treap) nextPriority() uint64 {
	// xorshift64*
	x := t.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rngState = x
	return x * 0x2545f4914f6cdd1d
}

// less orders updates by generation time, breaking ties by arrival
// sequence so the key is a strict total order.
func less(a, b *model.Update) bool {
	if a.GenTime != b.GenTime {
		return a.GenTime < b.GenTime
	}
	return a.Seq < b.Seq
}

func (t *treap) len() int { return t.size }

func (t *treap) insert(u *model.Update) {
	n := t.free
	if n != nil {
		t.free = n.right
		n.right = nil
		n.update = u
	} else {
		//striplint:ignore alloc-in-hotpath -- freelist miss: first insert at a new queue-depth high-water mark; steady state recycles removed nodes
		n = &node{update: u}
	}
	n.priority = t.nextPriority()
	t.root = t.insertNode(t.root, n)
	t.size++
}

func (t *treap) insertNode(root, n *node) *node {
	if root == nil {
		return n
	}
	if less(n.update, root.update) {
		root.left = t.insertNode(root.left, n)
		if root.left.priority > root.priority {
			root = rotateRight(root)
		}
	} else {
		root.right = t.insertNode(root.right, n)
		if root.right.priority > root.priority {
			root = rotateLeft(root)
		}
	}
	return root
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	return y
}

// min returns the oldest-generation update, or nil when empty.
func (t *treap) min() *model.Update {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n.update
}

// max returns the newest-generation update, or nil when empty.
func (t *treap) max() *model.Update {
	n := t.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n.update
}

// remove deletes the node with exactly u's key and reports whether it
// was present.
func (t *treap) remove(u *model.Update) bool {
	var removed bool
	t.root, removed = t.removeNode(t.root, u)
	if removed {
		t.size--
	}
	return removed
}

func (t *treap) removeNode(root *node, u *model.Update) (*node, bool) {
	if root == nil {
		return nil, false
	}
	if root.update.Seq == u.Seq && root.update.GenTime == u.GenTime {
		merged := t.merge(root.left, root.right)
		// Recycle the removed node, dropping its references so the
		// freelist does not retain the update or a subtree.
		root.update = nil
		root.left = nil
		root.right = t.free
		t.free = root
		return merged, true
	}
	var removed bool
	if less(u, root.update) {
		root.left, removed = t.removeNode(root.left, u)
	} else {
		root.right, removed = t.removeNode(root.right, u)
	}
	return root, removed
}

// merge joins two treaps where every key in a precedes every key in b.
func (t *treap) merge(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.priority > b.priority {
		a.right = t.merge(a.right, b)
		return a
	}
	b.left = t.merge(a, b.left)
	return b
}

// walk visits updates in generation order.
func (t *treap) walk(visit func(*model.Update)) {
	var rec func(*node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		rec(n.left)
		visit(n.update)
		rec(n.right)
	}
	rec(t.root)
}
