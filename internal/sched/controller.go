package sched

import (
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/uqueue"
)

// trackerWithGen is what the controller needs from a staleness
// tracker: the event interface plus the installed generation time used
// by the worthiness check. Every tracker in internal/metrics satisfies
// it.
type trackerWithGen interface {
	metrics.Tracker
	metrics.GenTimer
}

// job is one uninterrupted stretch of CPU work. The controller runs at
// most one job at a time; preemptible jobs (transaction work under UF
// and SU) can be suspended by an arriving update, every other job runs
// to completion.
type job struct {
	kind metrics.CPUKind
	// dur is the remaining duration in seconds (decremented when the
	// job is preempted part-way).
	dur       float64
	startedAt float64
	ev        *sim.Event
	// tr is the transaction this job belongs to, nil for update work.
	tr *txnRun
	// base marks jobs that are part of the transaction's perfect
	// execution estimate (computation and lookups); OD scans and
	// in-line applies are not base jobs.
	base bool
	// preemptible jobs can be suspended by update arrivals (UF/SU).
	preemptible bool
	onDone      func()
}

// Controller is the §3.1 controller process: it owns the OS queue, the
// update queue, the transaction ready queue and the single CPU, and
// implements the scheduling policies.
type Controller struct {
	sim     *sim.Simulator
	p       *model.Params
	policy  Policy
	tracker trackerWithGen
	col     *metrics.Collector

	osq *uqueue.OSQueue
	uq  *classQueues

	ready     readyQueue
	current   *job
	running   *txnRun // transaction whose flow owns the CPU
	suspended *txnRun // transaction preempted by update work (UF/SU)

	// pendingSwitch is the context-switch cost (seconds) charged to
	// the next update job after a preemption (2·xswitch, §3.3).
	pendingSwitch float64

	// busyTxn/busyUpd track unclipped busy seconds for FC's deficit
	// accounting.
	busyTxn, busyUpd float64

	lookupSec float64
	updateSec float64
	switchSec float64

	// bp models the page cache of the disk-resident extension; nil
	// for the paper's main-memory baseline.
	bp *bufferPool

	// tracer receives scheduling events; nil disables tracing.
	tracer Tracer
}

// newController wires up a controller for one simulation run.
func newController(s *sim.Simulator, p *model.Params, policy Policy,
	tracker trackerWithGen, col *metrics.Collector, queueSeed uint64) *Controller {
	c := &Controller{
		sim:       s,
		p:         p,
		policy:    policy,
		tracker:   tracker,
		col:       col,
		osq:       uqueue.NewOSQueue(p.OSMax),
		lookupSec: p.Seconds(p.XLookup),
		updateSec: p.Seconds(p.XUpdate),
		switchSec: p.Seconds(p.XSwitch),
	}
	if policy.usesUpdateQueue() {
		c.uq = newClassQueues(p, queueSeed)
	}
	if p.DiskResident {
		c.bp = newBufferPool(p.BufferPoolPages)
	}
	return c
}

// ioCost returns the disk stall for touching an object's page: zero
// in the main-memory baseline or on a buffer pool hit. The access is
// recorded in the metrics.
func (c *Controller) ioCost(obj model.ObjectID) float64 {
	if c.bp == nil {
		return 0
	}
	if c.bp.access(obj) {
		c.col.PageAccess(true)
		return 0
	}
	c.col.PageAccess(false)
	return c.p.IOSeconds
}

// startJob begins a job on the CPU. The controller must be idle.
func (c *Controller) startJob(j *job) {
	if c.current != nil {
		panic("sched: starting a job while the CPU is busy")
	}
	if j.dur < 0 {
		j.dur = 0
	}
	j.startedAt = c.sim.Now()
	c.current = j
	j.ev = c.sim.After(j.dur, func() { c.completeJob(j) })
}

// completeJob charges the job's CPU time and runs its continuation.
func (c *Controller) completeJob(j *job) {
	now := c.sim.Now()
	c.charge(j.kind, j.startedAt, now)
	if j.tr != nil && j.base {
		j.tr.estRemaining -= now - j.startedAt
		if j.tr.estRemaining < 0 {
			j.tr.estRemaining = 0
		}
	}
	c.current = nil
	j.onDone()
}

// charge books busy CPU seconds both to the metrics collector (which
// clips to the measurement window) and to the controller's own
// counters used by FC.
func (c *Controller) charge(kind metrics.CPUKind, from, to float64) {
	c.col.ChargeCPU(kind, from, to)
	if kind == metrics.CPUTxn {
		c.busyTxn += to - from
	} else {
		c.busyUpd += to - from
	}
}

// cancelCurrent stops the running job part-way, charging the elapsed
// time, and returns it with its duration reduced to the unexecuted
// remainder. The CPU is left idle.
func (c *Controller) cancelCurrent() *job {
	j := c.current
	if j == nil {
		return nil
	}
	now := c.sim.Now()
	elapsed := now - j.startedAt
	c.charge(j.kind, j.startedAt, now)
	if j.tr != nil && j.base {
		j.tr.estRemaining -= elapsed
		if j.tr.estRemaining < 0 {
			j.tr.estRemaining = 0
		}
	}
	j.dur -= elapsed
	if j.dur < 0 {
		j.dur = 0
	}
	c.sim.Cancel(j.ev)
	c.current = nil
	return j
}

// preemptRunningTxn suspends the running transaction so update work
// can take the CPU (UF, and SU for high-importance updates). The
// 2·xswitch context-switch cost is charged to the next update job.
func (c *Controller) preemptRunningTxn() {
	j := c.cancelCurrent()
	if j == nil || j.tr == nil {
		panic("sched: preempting a non-transaction job")
	}
	tr := j.tr
	tr.stageRemaining = j.dur
	c.suspended = tr
	c.running = nil
	c.pendingSwitch += 2 * c.switchSec
	c.traceTxn(TraceTxnPreempted, tr)
}

// takePendingSwitch consumes the accumulated context-switch charge.
func (c *Controller) takePendingSwitch() float64 {
	s := c.pendingSwitch
	c.pendingSwitch = 0
	return s
}

// feasible reports whether tr can still commit by its deadline given
// its perfect remaining-time estimate.
func (c *Controller) feasible(tr *txnRun, now float64) bool {
	return now+tr.estRemaining <= tr.txn.Deadline+1e-12
}

// dispatch is the scheduling point: called whenever the CPU goes idle
// and at arrivals that may claim an idle CPU. It discards expired
// updates (MA), then picks the next work item per the policy.
func (c *Controller) dispatch() {
	if c.current != nil {
		return
	}
	now := c.sim.Now()
	if c.uq != nil {
		// Receive: at every scheduling point the controller moves
		// all OS-queued updates into the update queue ("all of the
		// updates will be received at once", §3.3). Only the install
		// step is deferred; the receive itself is cheap bookkeeping.
		// When the modelled receive cost is non-zero it runs as a CPU
		// job and this dispatch resumes at its completion.
		if c.osq.Len() > 0 && c.startReceive() {
			return
		}
		c.col.SampleQueueLen(c.uq.Len())
		// MA expiry: updates older than Delta can never make an
		// object fresh, so they are discarded at every scheduling
		// point (§4.2).
		if c.p.UsesMaxAge() {
			if cost := c.discardExpired(now); cost > 0 {
				c.startJob(&job{
					kind:   metrics.CPUUpdate,
					dur:    cost,
					onDone: c.dispatch,
				})
				return
			}
		}
	}

	switch c.policy {
	case UF:
		if c.osq.Len() > 0 {
			c.startInstallFromOS()
			return
		}
		c.resumeOrNextTxn()
	case TF, OD:
		if c.resumeOrNextTxn() {
			return
		}
		if c.uq.Len() > 0 {
			c.startInstallFromQueue(c.installClass())
			return
		}
	case SU:
		if c.uq.LenClass(model.High) > 0 {
			c.startInstallFromQueue(int(model.High))
			return
		}
		if c.resumeOrNextTxn() {
			return
		}
		if c.uq.LenClass(model.Low) > 0 {
			c.startInstallFromQueue(int(model.Low))
			return
		}
	case FC:
		c.dispatchFC()
	}
}

// installClass returns the class selector for queue installs under TF
// and OD: merged generation order by default, high-before-low with
// the PartitionedQueues extension.
func (c *Controller) installClass() int {
	if c.p.PartitionedQueues {
		if c.uq.LenClass(model.High) > 0 {
			return int(model.High)
		}
		return int(model.Low)
	}
	return -1
}

// dispatchFC implements the fixed-CPU-fraction policy: run update work
// whenever the update process is below its reserved share, otherwise
// prefer transactions; either side takes the CPU when the other has
// nothing to do.
func (c *Controller) dispatchFC() {
	updWork := c.uq.Len() > 0
	behind := c.busyUpd < c.p.UpdateCPUFraction*(c.busyTxn+c.busyUpd)
	if updWork && behind {
		c.startUpdateWorkFC()
		return
	}
	if c.resumeOrNextTxn() {
		return
	}
	if updWork {
		c.startUpdateWorkFC()
	}
}

// startUpdateWorkFC performs the next unit of update work for FC. The
// OS queue has already been received at the top of dispatch, so the
// work is always an install.
func (c *Controller) startUpdateWorkFC() {
	c.startInstallFromQueue(c.installClass())
}

// discardExpired drops every queued update older than Delta and
// returns the modelled queue-removal cost in seconds.
func (c *Controller) discardExpired(now float64) float64 {
	cutoff := now - c.p.MaxAgeDelta
	n := c.uq.Len()
	discarded := c.uq.DiscardOlderGen(cutoff)
	cost := 0.0
	for i, u := range discarded {
		c.tracker.Removed(u.Object, u.GenTime, now)
		c.col.UpdateExpired()
		c.traceUpdate(TraceUpdateExpired, u.Object)
		cost += c.p.Seconds(removeCost(c.p.XQueue, n-i))
	}
	return cost
}

// resumeOrNextTxn resumes the update-preempted transaction or starts
// the highest-density feasible pending transaction. It reports whether
// a transaction job was started; infeasible transactions encountered
// on the way are aborted (the feasible-deadline policy of §3.4).
func (c *Controller) resumeOrNextTxn() bool {
	now := c.sim.Now()
	if tr := c.suspended; tr != nil {
		c.suspended = nil
		if tr.abortPending || (c.p.FeasibleDeadline && !c.feasible(tr, now)) {
			c.resolve(tr, model.TxnAbortedDeadline)
		} else {
			c.running = tr
			c.traceTxn(TraceTxnResumed, tr)
			c.continueTxn(tr)
			return true
		}
	}
	for {
		tr := c.ready.Pop()
		if tr == nil {
			return false
		}
		if c.p.FeasibleDeadline && !c.feasible(tr, now) {
			c.resolve(tr, model.TxnAbortedDeadline)
			continue
		}
		c.running = tr
		c.txn(tr).State = model.TxnRunningState
		c.traceTxn(TraceTxnStarted, tr)
		c.continueTxn(tr)
		return true
	}
}

func (c *Controller) txn(tr *txnRun) *model.Txn { return tr.txn }

// resolve finishes a transaction in the given terminal state and
// reports it to the metrics collector. It does not dispatch; callers
// on the CPU path must dispatch afterwards.
func (c *Controller) resolve(tr *txnRun, state model.TxnState) {
	if tr.resolved() {
		return
	}
	c.sim.Cancel(tr.deadlineEv)
	tr.txn.State = state
	tr.txn.FinishTime = c.sim.Now()
	c.col.TxnResolved(tr.txn)
	switch state {
	case model.TxnCommittedState:
		c.traceTxn(TraceTxnCommitted, tr)
	case model.TxnAbortedDeadline:
		c.traceTxn(TraceTxnAbortedDeadline, tr)
	case model.TxnAbortedStale:
		c.traceTxn(TraceTxnAbortedStale, tr)
	}
	if c.running == tr {
		c.running = nil
	}
}

// onTxnArrival admits a new transaction: schedules its firm deadline,
// queues it by value density, and claims the CPU if it is idle (or,
// with the TxnPreemption extension, preempts a lower-density running
// transaction).
func (c *Controller) onTxnArrival(txn *model.Txn) {
	c.col.TxnArrived()
	tr := &txnRun{txn: txn, estRemaining: estimateSeconds(c.p, txn)}
	c.traceTxn(TraceTxnArrived, tr)
	tr.deadlineEv = c.sim.At(txn.Deadline, func() { c.onDeadline(tr) })
	c.ready.Push(tr)
	if c.current == nil {
		c.dispatch()
		return
	}
	if c.p.TxnPreemption && c.current.tr != nil && c.current.base &&
		c.running != nil && tr.density > c.running.txn.Value/maxf(c.running.estRemaining, 1e-12) {
		// Extension: transaction preemption by value density. The
		// displaced transaction re-enters the ready queue with its
		// updated remaining time.
		j := c.cancelCurrent()
		displaced := j.tr
		displaced.stageRemaining = j.dur
		displaced.txn.State = model.TxnPendingState
		c.running = nil
		c.ready.Push(displaced)
		c.dispatch()
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// onDeadline enforces the firm deadline: an unresolved transaction is
// aborted wherever it is — queued, suspended, or on the CPU. A
// transaction mid-way through an On Demand in-line install finishes
// that install first (the install is useful to the database
// regardless), then aborts.
func (c *Controller) onDeadline(tr *txnRun) {
	if tr.resolved() {
		return
	}
	if c.current != nil && c.current.tr == tr {
		if c.current.kind == metrics.CPUUpdate {
			// In-line OD apply: let it finish, abort at continuation.
			tr.abortPending = true
			return
		}
		c.cancelCurrent()
		c.resolve(tr, model.TxnAbortedDeadline)
		c.dispatch()
		return
	}
	if c.suspended == tr {
		c.suspended = nil
		c.resolve(tr, model.TxnAbortedDeadline)
		return
	}
	// Queued: resolve now, the ready queue drops it lazily.
	c.resolve(tr, model.TxnAbortedDeadline)
}

// onUpdateArrival is step 1-2 of Fig. 2: the update lands in the OS
// queue and, depending on the policy, may immediately claim the CPU.
func (c *Controller) onUpdateArrival(u *model.Update) {
	c.col.UpdateArrived()
	c.traceUpdate(TraceUpdateArrived, u.Object)
	if !c.osq.Offer(u) {
		c.col.UpdateOSDropped()
		c.traceUpdate(TraceUpdateDropped, u.Object)
		return
	}
	switch c.policy {
	case UF:
		if c.current == nil {
			c.dispatch()
		} else if c.current.preemptible {
			c.preemptRunningTxn()
			c.dispatch()
		}
	case SU:
		if u.Class == model.High {
			if c.current == nil {
				c.dispatch()
			} else if c.current.preemptible {
				c.preemptRunningTxn()
				c.dispatch()
			}
		} else if c.current == nil {
			c.dispatch()
		}
	default: // TF, OD, FC: updates never interrupt
		if c.current == nil {
			c.dispatch()
		}
	}
}

// finish charges the partially executed job at the end of the run.
func (c *Controller) finish(end float64) {
	if j := c.current; j != nil {
		c.charge(j.kind, j.startedAt, end)
		c.sim.Cancel(j.ev)
		c.current = nil
	}
}
