package sched

import (
	"math"

	"repro/internal/model"
	"repro/internal/uqueue"
)

// classQueues wraps one update queue per importance class behind a
// merged, generation-ordered view with a joint capacity bound. SU
// needs the split to drain the high partition eagerly; TF and OD see a
// single merged queue (the paper's baseline), or — with the
// PartitionedQueues extension — the same class-priority drain as SU.
type classQueues struct {
	q   [2]uqueue.Queue // indexed by model.Importance
	cap int
}

// newClassQueues builds the configured queue pair: generation-ordered
// treap queues by default, coalescing queues when the CoalesceQueue
// extension is on. The joint capacity is UQMax.
func newClassQueues(p *model.Params, seed uint64) *classQueues {
	mk := func(s uint64) uqueue.Queue {
		if p.CoalesceQueue {
			return uqueue.NewCoalescedQueue(0, s)
		}
		return uqueue.NewGenQueue(0, s)
	}
	return &classQueues{
		q:   [2]uqueue.Queue{mk(seed), mk(seed + 1)},
		cap: p.UQMax,
	}
}

// Insert adds u to its class queue and enforces the joint capacity,
// evicting the globally oldest update on overflow. All departures
// (coalesced, rejected or overflow-evicted) are returned.
func (cq *classQueues) Insert(u *model.Update) []*model.Update {
	evicted := cq.q[u.Class].Insert(u)
	if cq.cap > 0 && cq.Len() > cq.cap {
		if old := cq.popMerged(model.FIFO); old != nil {
			evicted = append(evicted, old)
		}
	}
	return evicted
}

// Len returns the total queued updates across both classes.
func (cq *classQueues) Len() int { return cq.q[model.Low].Len() + cq.q[model.High].Len() }

// LenClass returns the queued updates for one class.
func (cq *classQueues) LenClass(class model.Importance) int { return cq.q[class].Len() }

// popMerged removes the oldest (FIFO) or newest (LIFO) update across
// both classes, or nil when empty.
func (cq *classQueues) popMerged(order model.QueueOrder) *model.Update {
	lo, hi := cq.q[model.Low], cq.q[model.High]
	if order == model.FIFO {
		a, b := lo.PeekOldest(), hi.PeekOldest()
		switch {
		case a == nil && b == nil:
			return nil
		case a == nil:
			return hi.PopOldest()
		case b == nil:
			return lo.PopOldest()
		case updateBefore(a, b):
			return lo.PopOldest()
		default:
			return hi.PopOldest()
		}
	}
	a, b := lo.PeekNewest(), hi.PeekNewest()
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil:
		return hi.PopNewest()
	case b == nil:
		return lo.PopNewest()
	case updateBefore(a, b):
		return hi.PopNewest()
	default:
		return lo.PopNewest()
	}
}

// updateBefore reports whether a precedes b in (generation, sequence)
// order.
func updateBefore(a, b *model.Update) bool {
	if a.GenTime != b.GenTime {
		return a.GenTime < b.GenTime
	}
	return a.Seq < b.Seq
}

// Pop removes the next update to install. class < 0 selects the
// merged view.
func (cq *classQueues) Pop(order model.QueueOrder, class int) *model.Update {
	if class < 0 {
		return cq.popMerged(order)
	}
	if order == model.FIFO {
		return cq.q[class].PopOldest()
	}
	return cq.q[class].PopNewest()
}

// NewestFor returns the newest queued update for the object.
func (cq *classQueues) NewestFor(class model.Importance, id model.ObjectID) *model.Update {
	return cq.q[class].NewestFor(id)
}

// TakeFor removes every queued update for the object, returning the
// newest and the superseded remainder.
func (cq *classQueues) TakeFor(class model.Importance, id model.ObjectID) (*model.Update, []*model.Update) {
	return cq.q[class].TakeFor(id)
}

// DiscardOlderGen removes every update generated before cutoff from
// both classes.
func (cq *classQueues) DiscardOlderGen(cutoff float64) []*model.Update {
	out := cq.q[model.Low].DiscardOlderGen(cutoff)
	return append(out, cq.q[model.High].DiscardOlderGen(cutoff)...)
}

// removeCost returns the instruction cost of one queue removal when
// the queue holds n updates: xqueue·ln(n) (§3.3), zero for n <= 1.
func removeCost(xqueue float64, n int) float64 {
	if n <= 1 || xqueue <= 0 {
		return 0
	}
	return xqueue * math.Log(float64(n))
}
