package sched

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Params is the full model parameter set (Tables 1-3).
	Params model.Params
	// Policy is the scheduling algorithm.
	Policy Policy
	// Seed makes the run deterministic; equal seeds and configs give
	// bit-identical results.
	Seed uint64
	// Duration is the simulated horizon in seconds (1000 s per data
	// point in the paper).
	Duration float64
	// Tracer optionally receives every scheduling event.
	Tracer Tracer
	// UpdateTrace, when non-nil, replays a recorded update stream
	// (see workload.TraceUpdateSource for the format) instead of the
	// synthetic source.
	UpdateTrace io.Reader
}

// Run executes one complete simulation and returns its metrics.
func Run(cfg Config) (metrics.Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return metrics.Result{}, fmt.Errorf("sched: invalid parameters: %w", err)
	}
	if cfg.Duration <= 0 {
		return metrics.Result{}, fmt.Errorf("sched: duration %v must be positive", cfg.Duration)
	}
	p := cfg.Params

	root := stats.NewRNG(cfg.Seed, 0x5DEECE66D)
	updateRNG := root.Split()
	txnRNG := root.Split()
	queueSeed := uint64(cfg.Seed*2654435761 + 1)

	s := sim.New()
	tracker := metrics.NewTracker(&p).(trackerWithGen)
	col := metrics.NewCollector(&p)
	c := newController(s, &p, cfg.Policy, tracker, col, queueSeed)
	c.tracer = cfg.Tracer

	// The update source is the Poisson stream of §5.1 by default, or
	// the §2 periodic per-object refresh model when configured.
	var nextUpdate func() *model.Update
	var traceSrc *workload.TraceUpdateSource
	switch {
	case cfg.UpdateTrace != nil:
		traceSrc = workload.NewTraceUpdateSource(&p, cfg.UpdateTrace)
		nextUpdate = traceSrc.Next
	case p.PeriodicPeriod > 0:
		src := workload.NewPeriodicUpdateSource(&p, p.PeriodicPeriod, updateRNG)
		nextUpdate = src.Next
	case p.BurstFactor > 1:
		quiet, burst := p.BurstQuietMean, p.BurstOnMean
		if quiet <= 0 {
			quiet = 4
		}
		if burst <= 0 {
			burst = 1
		}
		src := workload.NewBurstyUpdateGenerator(&p, updateRNG, p.BurstFactor, quiet, burst)
		nextUpdate = src.Next
	default:
		ug := workload.NewUpdateGenerator(&p, updateRNG)
		nextUpdate = ug.Next
	}
	var scheduleUpdate func()
	scheduleUpdate = func() {
		u := nextUpdate()
		if u == nil || u.ArrivalTime > cfg.Duration {
			return
		}
		s.At(u.ArrivalTime, func() {
			c.onUpdateArrival(u)
			scheduleUpdate()
		})
	}
	scheduleUpdate()

	tg := workload.NewTxnGenerator(&p, txnRNG)
	var scheduleTxn func()
	scheduleTxn = func() {
		txn := tg.Next()
		if txn == nil || txn.ArrivalTime > cfg.Duration {
			return
		}
		s.At(txn.ArrivalTime, func() {
			c.onTxnArrival(txn)
			scheduleTxn()
		})
	}
	scheduleTxn()

	s.Run(cfg.Duration)
	c.finish(cfg.Duration)
	tracker.Finish(cfg.Duration)
	col.Finish(cfg.Duration)
	if traceSrc != nil {
		if err := traceSrc.Err(); err != nil {
			return metrics.Result{}, err
		}
	}
	return col.Result(tracker), nil
}

// MustRun is Run for tests and examples where the configuration is
// known to be valid; it panics on error.
func MustRun(cfg Config) metrics.Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
