package sched

import (
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// estimateSeconds is the perfect execution-time estimate of §3.4.
func estimateSeconds(p *model.Params, txn *model.Txn) float64 {
	return workload.EstimateSeconds(p, txn)
}

// continueTxn starts (or resumes after preemption) the base job for
// the transaction's current stage. Stage layout (§3.4): pview of the
// computation, then the view reads, then the rest of the computation.
func (c *Controller) continueTxn(tr *txnRun) {
	if tr.abortPending {
		c.resolve(tr, model.TxnAbortedDeadline)
		c.dispatch()
		return
	}
	switch tr.stage {
	case 0:
		if tr.stageRemaining == 0 && tr.readIdx == 0 {
			// Entering stage 0 fresh: compute the pre-read segment.
			tr.stageRemaining = tr.txn.PView * tr.txn.CompSeconds
		}
		if tr.stageRemaining <= 0 {
			c.enterReads(tr)
			return
		}
		c.startTxnBaseJob(tr, tr.stageRemaining, func() {
			tr.stageRemaining = 0
			c.enterReads(tr)
		})
	case 1:
		// Resuming a preempted lookup.
		c.startTxnBaseJob(tr, tr.stageRemaining, func() {
			tr.stageRemaining = 0
			c.onReadDone(tr)
		})
	case 2:
		c.startTxnBaseJob(tr, tr.stageRemaining, func() {
			tr.stageRemaining = 0
			c.commit(tr)
		})
	}
}

// startTxnBaseJob runs dur seconds of estimated transaction work.
// Base jobs are preemptible by update arrivals under UF and SU.
func (c *Controller) startTxnBaseJob(tr *txnRun, dur float64, onDone func()) {
	c.startJob(&job{
		kind:        metrics.CPUTxn,
		dur:         dur,
		tr:          tr,
		base:        true,
		preemptible: c.policy == UF || c.policy == SU,
		onDone:      onDone,
	})
}

// enterReads moves the transaction into its view-read stage.
func (c *Controller) enterReads(tr *txnRun) {
	tr.stage = 1
	tr.readIdx = 0
	c.startNextRead(tr)
}

// startNextRead begins the lookup for the next view object, or moves
// on to the post-read computation when all reads are done.
func (c *Controller) startNextRead(tr *txnRun) {
	if tr.abortPending {
		c.resolve(tr, model.TxnAbortedDeadline)
		c.dispatch()
		return
	}
	if tr.readIdx >= len(tr.txn.ReadSet) {
		c.enterWork2(tr)
		return
	}
	tr.stageRemaining = c.lookupSec + c.ioCost(tr.txn.ReadSet[tr.readIdx])
	c.startTxnBaseJob(tr, tr.stageRemaining, func() {
		tr.stageRemaining = 0
		c.onReadDone(tr)
	})
}

// enterWork2 starts the post-read computation segment.
func (c *Controller) enterWork2(tr *txnRun) {
	tr.stage = 2
	tr.stageRemaining = (1 - tr.txn.PView) * tr.txn.CompSeconds
	if tr.stageRemaining <= 0 {
		c.commit(tr)
		return
	}
	c.startTxnBaseJob(tr, tr.stageRemaining, func() {
		tr.stageRemaining = 0
		c.commit(tr)
	})
}

// commit finishes the transaction successfully. The firm-deadline
// event would have fired first had the deadline passed, so reaching
// here means the transaction is on time.
func (c *Controller) commit(tr *txnRun) {
	c.resolve(tr, model.TxnCommittedState)
	c.dispatch()
}

// onReadDone runs after the lookup of ReadSet[readIdx] completes: the
// staleness check of §3.4 step 2, including the On Demand refresh
// path of §4.4.
func (c *Controller) onReadDone(tr *txnRun) {
	obj := tr.txn.ReadSet[tr.readIdx]
	now := c.sim.Now()

	if c.policy == OD {
		c.odRead(tr, obj)
		return
	}
	if c.tracker.IsStale(obj, now) {
		c.staleRead(tr)
		return
	}
	c.advanceRead(tr)
}

// advanceRead moves to the next view read.
func (c *Controller) advanceRead(tr *txnRun) {
	tr.readIdx++
	c.startNextRead(tr)
}

// staleRead records a stale read and applies the configured action:
// continue (metric only) or abort (§6.2).
func (c *Controller) staleRead(tr *txnRun) {
	tr.txn.ReadStale = true
	if c.p.OnStale == model.StaleAbort {
		c.resolve(tr, model.TxnAbortedStale)
		c.dispatch()
		return
	}
	c.advanceRead(tr)
}

// odRead performs the On Demand staleness handling for one read.
//
// Under MA the object's timestamp answers the staleness question for
// free; only a stale object triggers the queue scan. Under UU (and
// UU-strict) the scan itself is the staleness check, so its cost is
// paid on every view read (§6.3).
func (c *Controller) odRead(tr *txnRun, obj model.ObjectID) {
	now := c.sim.Now()
	scanEveryRead := c.p.Staleness != model.MaxAge

	if !scanEveryRead && !c.tracker.IsStale(obj, now) {
		c.advanceRead(tr)
		return
	}
	scanDur := c.p.Seconds(c.p.XScan * float64(c.uq.Len()))
	c.startJob(&job{
		kind: metrics.CPUTxn, // the scan lengthens the reading transaction
		dur:  scanDur,
		tr:   tr,
		onDone: func() {
			if tr.abortPending {
				c.resolve(tr, model.TxnAbortedDeadline)
				c.dispatch()
				return
			}
			c.odAfterScan(tr, obj)
		},
	})
}

// odAfterScan decides, with the scan paid for, whether a queued update
// can refresh the object, and applies it in-line if so.
func (c *Controller) odAfterScan(tr *txnRun, obj model.ObjectID) {
	now := c.sim.Now()
	class := c.p.ObjectClass(obj)

	if !c.tracker.IsStale(obj, now) {
		// Either the object was never stale (UU scan-every-read) or
		// it was refreshed while this transaction was queued.
		c.advanceRead(tr)
		return
	}

	if c.p.UsesMaxAge() {
		u := c.uq.NewestFor(class, obj)
		if u == nil || now-u.GenTime > c.p.MaxAgeDelta {
			// No queued update can make the object fresh.
			c.staleRead(tr)
			return
		}
	}

	newest, superseded := c.uq.TakeFor(class, obj)
	if newest == nil {
		// UU-strict can report staleness with an empty queue (the
		// pending update was dropped); nothing to apply.
		c.staleRead(tr)
		return
	}
	// Superseded older updates for the object are discarded.
	for range superseded {
		c.tracker.Removed(obj, newest.GenTime, now)
		c.col.UpdateSkippedUnworthy()
		c.traceUpdate(TraceUpdateSkipped, obj)
	}
	if newest.GenTime <= c.tracker.GenTime(obj) {
		// The database already holds a newer value than anything
		// queued: the queued updates were worthless.
		c.tracker.Removed(obj, newest.GenTime, now)
		c.col.UpdateSkippedUnworthy()
		if c.tracker.IsStale(obj, now) {
			c.staleRead(tr)
			return
		}
		c.advanceRead(tr)
		return
	}

	// Apply the newest update in-line. The install is charged to the
	// update process (it is update work, §6.1 accounting) and is not
	// cancelled by the firm deadline — the value is useful to the
	// database regardless of the transaction's fate.
	c.startJob(&job{
		kind: metrics.CPUUpdate,
		dur:  c.updateSec,
		tr:   tr,
		onDone: func() {
			t := c.sim.Now()
			c.tracker.Installed(obj, newest.GenTime, t)
			c.col.UpdateInstalled()
			c.traceUpdate(TraceUpdateInstalled, obj)
			if tr.abortPending {
				c.resolve(tr, model.TxnAbortedDeadline)
				c.dispatch()
				return
			}
			if c.tracker.IsStale(obj, t) {
				// MA: even the newest update left the object stale
				// (aged past Delta while applying — rare).
				c.staleRead(tr)
				return
			}
			c.advanceRead(tr)
		},
	})
}
