package sched

import (
	"testing"

	"repro/internal/model"
)

func mkRun(id uint64, value, estRemaining float64) *txnRun {
	return &txnRun{
		txn:          &model.Txn{ID: id, Value: value},
		estRemaining: estRemaining,
	}
}

func TestReadyQueueDensityOrder(t *testing.T) {
	var rq readyQueue
	rq.Push(mkRun(1, 1.0, 0.1)) // density 10
	rq.Push(mkRun(2, 2.0, 0.1)) // density 20
	rq.Push(mkRun(3, 1.0, 0.2)) // density 5
	want := []uint64{2, 1, 3}
	for i, id := range want {
		tr := rq.Pop()
		if tr == nil || tr.txn.ID != id {
			t.Fatalf("pop %d: got %v, want txn %d", i, tr, id)
		}
	}
	if rq.Pop() != nil {
		t.Fatal("empty queue should pop nil")
	}
}

func TestReadyQueueTieBreakByID(t *testing.T) {
	var rq readyQueue
	rq.Push(mkRun(5, 1.0, 0.1))
	rq.Push(mkRun(2, 1.0, 0.1))
	rq.Push(mkRun(9, 1.0, 0.1))
	for _, id := range []uint64{2, 5, 9} {
		if got := rq.Pop().txn.ID; got != id {
			t.Fatalf("tie-break order wrong: got %d, want %d", got, id)
		}
	}
}

func TestReadyQueueLazyRemoval(t *testing.T) {
	var rq readyQueue
	a := mkRun(1, 5.0, 0.1)
	b := mkRun(2, 1.0, 0.1)
	rq.Push(a)
	rq.Push(b)
	a.txn.State = model.TxnAbortedDeadline // resolved while queued
	if got := rq.Pop(); got != b {
		t.Fatalf("Pop returned %v, want the unresolved txn", got.txn.ID)
	}
	if rq.Pop() != nil {
		t.Fatal("resolved txn must be dropped")
	}
}

func TestReadyQueuePeek(t *testing.T) {
	var rq readyQueue
	a := mkRun(1, 5.0, 0.1)
	rq.Push(a)
	if rq.Peek() != a {
		t.Fatal("Peek should return the top")
	}
	if rq.Len() != 1 {
		t.Fatal("Peek must not remove")
	}
	a.txn.State = model.TxnCommittedState
	if rq.Peek() != nil {
		t.Fatal("Peek should skip resolved transactions")
	}
}

func TestReadyQueueZeroRemaining(t *testing.T) {
	var rq readyQueue
	rq.Push(mkRun(1, 1.0, 0)) // infinite density guarded
	rq.Push(mkRun(2, 100.0, 1.0))
	if got := rq.Pop().txn.ID; got != 1 {
		t.Fatalf("zero-remaining txn should have maximal density, got %d", got)
	}
}

func TestTxnRunResolved(t *testing.T) {
	tr := mkRun(1, 1, 1)
	if tr.resolved() {
		t.Fatal("pending txn reported resolved")
	}
	for _, st := range []model.TxnState{
		model.TxnCommittedState, model.TxnAbortedDeadline, model.TxnAbortedStale,
	} {
		tr.txn.State = st
		if !tr.resolved() {
			t.Fatalf("state %v should be resolved", st)
		}
	}
	tr.txn.State = model.TxnRunningState
	if tr.resolved() {
		t.Fatal("running txn reported resolved")
	}
}
