package sched

import "testing"

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{UF: "UF", TF: "TF", SU: "SU", OD: "OD", FC: "FC"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"UF", "uf", " Tf ", "su", "OD", "fc"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q) failed: %v", s, err)
		}
	}
	if p, _ := ParsePolicy("od"); p != OD {
		t.Error("ParsePolicy(od) != OD")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) should fail")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, p := range AllPolicies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip failed for %v: got %v, err %v", p, got, err)
		}
	}
}

func TestUsesUpdateQueue(t *testing.T) {
	if UF.usesUpdateQueue() {
		t.Error("UF should not use the update queue")
	}
	for _, p := range []Policy{TF, SU, OD, FC} {
		if !p.usesUpdateQueue() {
			t.Errorf("%v should use the update queue", p)
		}
	}
}

func TestPoliciesList(t *testing.T) {
	if len(Policies) != 4 {
		t.Fatalf("Policies has %d entries, want the paper's 4", len(Policies))
	}
	if len(AllPolicies) != 5 {
		t.Fatalf("AllPolicies has %d entries, want 5", len(AllPolicies))
	}
}
