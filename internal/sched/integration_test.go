package sched

// Integration tests: full simulation runs asserting the qualitative
// findings of the paper's evaluation (§6). Horizons are shorter than
// the paper's 1000 s to keep the suite fast; the shapes are stable
// well before that.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestUtilizationSumsToAtMostOne(t *testing.T) {
	for _, pol := range Policies {
		p := model.DefaultParams()
		p.TxnRate = 25
		r := MustRun(Config{Params: p, Policy: pol, Seed: 7, Duration: 60})
		total := r.RhoTxn + r.RhoUpdate
		if total > 1.0+1e-6 {
			t.Errorf("%v: total utilization %v > 1", pol, total)
		}
		if total < 0.95 {
			t.Errorf("%v: total utilization %v, CPU should saturate at lambda_t=25", pol, total)
		}
	}
}

func TestFig3UpdateUtilization(t *testing.T) {
	// UF's rho_u is flat at about lambda_u*(install)/ips = 0.192
	// regardless of load; TF's collapses under transaction pressure.
	p := model.DefaultParams()
	p.TxnRate = 20
	uf := MustRun(Config{Params: p, Policy: UF, Seed: 7, Duration: 60})
	tf := MustRun(Config{Params: p, Policy: TF, Seed: 7, Duration: 60})
	if math.Abs(uf.RhoUpdate-0.192) > 0.02 {
		t.Errorf("UF rho_u = %v, want about 0.192", uf.RhoUpdate)
	}
	if tf.RhoUpdate > 0.05 {
		t.Errorf("TF rho_u = %v under overload, want near zero", tf.RhoUpdate)
	}

	// At light load all algorithms keep up with the full stream.
	p.TxnRate = 1
	for _, pol := range Policies {
		r := MustRun(Config{Params: p, Policy: pol, Seed: 7, Duration: 60})
		if math.Abs(r.RhoUpdate-0.192) > 0.02 {
			t.Errorf("%v rho_u = %v at light load, want about 0.192", pol, r.RhoUpdate)
		}
	}
}

func TestFig4DeadlinesAndValue(t *testing.T) {
	p := model.DefaultParams()
	p.TxnRate = 15
	res := map[Policy]struct{ pmd, av float64 }{}
	for _, pol := range Policies {
		r := MustRun(Config{Params: p, Policy: pol, Seed: 9, Duration: 100})
		res[pol] = struct{ pmd, av float64 }{r.PMissedDeadline, r.AvgValuePerSecond}
	}
	// TF and OD favor transactions: fewer missed deadlines and more
	// value than UF and SU.
	for _, txnFirst := range []Policy{TF, OD} {
		for _, updFirst := range []Policy{UF, SU} {
			if res[txnFirst].pmd >= res[updFirst].pmd {
				t.Errorf("pMD(%v)=%v should be below pMD(%v)=%v",
					txnFirst, res[txnFirst].pmd, updFirst, res[updFirst].pmd)
			}
			if res[txnFirst].av <= res[updFirst].av {
				t.Errorf("AV(%v)=%v should exceed AV(%v)=%v",
					txnFirst, res[txnFirst].av, updFirst, res[updFirst].av)
			}
		}
	}
}

func TestFig4ValueGrowsPastSaturation(t *testing.T) {
	// Even though more deadlines are missed, higher load returns more
	// value: the scheduler picks the most valuable opportunities.
	prev := 0.0
	for _, rate := range []float64{10, 15, 20, 25} {
		p := model.DefaultParams()
		p.TxnRate = rate
		r := MustRun(Config{Params: p, Policy: TF, Seed: 5, Duration: 100})
		if r.AvgValuePerSecond <= prev {
			t.Fatalf("AV at lambda_t=%v is %v, not above %v", rate, r.AvgValuePerSecond, prev)
		}
		prev = r.AvgValuePerSecond
	}
}

func TestFig5Staleness(t *testing.T) {
	p := model.DefaultParams()
	p.TxnRate = 20
	uf := MustRun(Config{Params: p, Policy: UF, Seed: 3, Duration: 100})
	tf := MustRun(Config{Params: p, Policy: TF, Seed: 3, Duration: 100})
	su := MustRun(Config{Params: p, Policy: SU, Seed: 3, Duration: 100})
	od := MustRun(Config{Params: p, Policy: OD, Seed: 3, Duration: 100})

	// UF keeps staleness below ~10% at any load.
	if uf.FOldLow > 0.10 || uf.FOldHigh > 0.10 {
		t.Errorf("UF fold = %v/%v, want under 0.10", uf.FOldLow, uf.FOldHigh)
	}
	// TF lets most data go stale under overload.
	if tf.FOldLow < 0.7 || tf.FOldHigh < 0.7 {
		t.Errorf("TF fold = %v/%v, want mostly stale", tf.FOldLow, tf.FOldHigh)
	}
	// SU protects the high partition only.
	if su.FOldHigh > 0.10 {
		t.Errorf("SU fold_h = %v, want fresh high partition", su.FOldHigh)
	}
	if su.FOldLow < 0.5 {
		t.Errorf("SU fold_l = %v, want stale low partition", su.FOldLow)
	}
	// OD is slightly fresher than TF (on-demand refreshes help).
	if od.FOldHigh >= tf.FOldHigh {
		t.Errorf("OD fold_h = %v should be below TF's %v", od.FOldHigh, tf.FOldHigh)
	}
}

func TestFig6SuccessRanking(t *testing.T) {
	// psuccess ranking at the baseline: OD > UF > SU > TF.
	p := model.DefaultParams()
	var got [4]float64
	for i, pol := range []Policy{OD, UF, SU, TF} {
		r := MustRun(Config{Params: p, Policy: pol, Seed: 21, Duration: 100})
		got[i] = r.PSuccess
	}
	for i := 0; i+1 < len(got); i++ {
		if got[i] <= got[i+1] {
			t.Fatalf("psuccess ranking broken: OD,UF,SU,TF = %v", got)
		}
	}
}

func TestFig6NonTardyFreshness(t *testing.T) {
	// OD and UF: transactions that meet deadlines almost always read
	// fresh data; TF: most non-tardy transactions read stale data.
	p := model.DefaultParams()
	od := MustRun(Config{Params: p, Policy: OD, Seed: 2, Duration: 100})
	uf := MustRun(Config{Params: p, Policy: UF, Seed: 2, Duration: 100})
	tf := MustRun(Config{Params: p, Policy: TF, Seed: 2, Duration: 100})
	if od.PSuccessGivenNonTardy < 0.7 || uf.PSuccessGivenNonTardy < 0.7 {
		t.Errorf("OD/UF psuc|nontardy = %v/%v, want high",
			od.PSuccessGivenNonTardy, uf.PSuccessGivenNonTardy)
	}
	if tf.PSuccessGivenNonTardy > 0.4 {
		t.Errorf("TF psuc|nontardy = %v, want low", tf.PSuccessGivenNonTardy)
	}
}

func TestFig7HeavyweightUpdatesHurtUF(t *testing.T) {
	// With xupdate large, UF and SU collapse while TF/OD shrug it off.
	p := model.DefaultParams()
	p.XUpdate = 50000
	uf := MustRun(Config{Params: p, Policy: UF, Seed: 11, Duration: 100})
	tf := MustRun(Config{Params: p, Policy: TF, Seed: 11, Duration: 100})
	if uf.AvgValuePerSecond >= tf.AvgValuePerSecond-1.0 {
		t.Errorf("heavy updates: AV(UF)=%v should be well below AV(TF)=%v",
			uf.AvgValuePerSecond, tf.AvgValuePerSecond)
	}
}

func TestFig9UpdateRateSensitivity(t *testing.T) {
	// Raising lambda_u: UF loses value (more installs), TF/OD stay
	// roughly flat.
	mk := func(pol Policy, rate float64) float64 {
		p := model.DefaultParams()
		p.UpdateRate = rate
		return MustRun(Config{Params: p, Policy: pol, Seed: 13, Duration: 100}).AvgValuePerSecond
	}
	if drop := mk(UF, 200) - mk(UF, 600); drop < 0.5 {
		t.Errorf("UF AV should fall noticeably with update rate (drop=%v)", drop)
	}
	if delta := math.Abs(mk(TF, 200) - mk(TF, 600)); delta > 0.8 {
		t.Errorf("TF AV should be nearly flat in update rate (delta=%v)", delta)
	}
}

func TestFig11FIFOvsLIFO(t *testing.T) {
	// Under MA, FIFO installs nearly expired updates first, keeping
	// data staler than LIFO (for the queue-based policies).
	mk := func(order model.QueueOrder) float64 {
		p := model.DefaultParams()
		p.TxnRate = 15
		p.Order = order
		r := MustRun(Config{Params: p, Policy: TF, Seed: 17, Duration: 100})
		return r.FOldLow
	}
	fifo, lifo := mk(model.FIFO), mk(model.LIFO)
	if fifo <= lifo {
		t.Errorf("fold_l FIFO=%v should exceed LIFO=%v", fifo, lifo)
	}
}

func TestFig12AbortsKeepTFDataFresher(t *testing.T) {
	// With abort-on-stale, TF aborts stale readers early, freeing
	// time to install updates: fold_h drops dramatically (§6.2).
	p := model.DefaultParams()
	noAbort := MustRun(Config{Params: p, Policy: TF, Seed: 19, Duration: 100})
	p.OnStale = model.StaleAbort
	abort := MustRun(Config{Params: p, Policy: TF, Seed: 19, Duration: 100})
	if abort.FOldHigh >= noAbort.FOldHigh/2 {
		t.Errorf("abort fold_h = %v, want far below no-abort %v",
			abort.FOldHigh, noAbort.FOldHigh)
	}
	if abort.TxnsAbortedStale == 0 {
		t.Error("no stale aborts recorded in abort mode")
	}
}

func TestFig13ODWinsUnderAborts(t *testing.T) {
	p := model.DefaultParams()
	p.OnStale = model.StaleAbort
	best := ""
	bestAV := -1.0
	for _, pol := range Policies {
		r := MustRun(Config{Params: p, Policy: pol, Seed: 23, Duration: 100})
		if r.AvgValuePerSecond > bestAV {
			bestAV = r.AvgValuePerSecond
			best = pol.String()
		}
	}
	if best != "OD" {
		t.Errorf("AV winner under aborts = %s, want OD", best)
	}
}

func TestFig15PViewDegradesAbortPerformance(t *testing.T) {
	// The later a transaction reads view data, the more work is
	// wasted when it aborts on stale data.
	mk := func(pv float64) float64 {
		p := model.DefaultParams()
		p.PView = pv
		p.OnStale = model.StaleAbort
		return MustRun(Config{Params: p, Policy: TF, Seed: 29, Duration: 100}).AvgValuePerSecond
	}
	if early, late := mk(0.0), mk(1.0); late >= early {
		t.Errorf("AV with pview=1 (%v) should be below pview=0 (%v)", late, early)
	}
}

func TestFig16UURankingMatchesMA(t *testing.T) {
	p := model.DefaultParams()
	p.Staleness = model.UnappliedUpdate
	var got [4]float64
	for i, pol := range []Policy{OD, UF, SU, TF} {
		r := MustRun(Config{Params: p, Policy: pol, Seed: 31, Duration: 100})
		got[i] = r.PSuccess
	}
	for i := 0; i+1 < len(got); i++ {
		if got[i] <= got[i+1] {
			t.Fatalf("UU psuccess ranking broken: OD,UF,SU,TF = %v", got)
		}
	}
}

func TestUUUFNeverStale(t *testing.T) {
	// UF has no update queue, so under the literal UU criterion its
	// data is never stale (§6.3).
	p := model.DefaultParams()
	p.Staleness = model.UnappliedUpdate
	r := MustRun(Config{Params: p, Policy: UF, Seed: 37, Duration: 50})
	if r.FOldLow != 0 || r.FOldHigh != 0 {
		t.Fatalf("UF under UU: fold = %v/%v, want zero", r.FOldLow, r.FOldHigh)
	}
}

func TestCoalescedQueueExtension(t *testing.T) {
	// The hash-coalescing queue keeps at most one update per object:
	// bounded queue length and no expired-update churn.
	p := model.DefaultParams()
	p.TxnRate = 20
	p.CoalesceQueue = true
	r := MustRun(Config{Params: p, Policy: OD, Seed: 41, Duration: 60})
	if r.MeanQueueLen > float64(p.NumObjects()) {
		t.Fatalf("coalesced queue length %v exceeds object count", r.MeanQueueLen)
	}
	base := p
	base.CoalesceQueue = false
	rb := MustRun(Config{Params: base, Policy: OD, Seed: 41, Duration: 60})
	if r.MeanQueueLen >= rb.MeanQueueLen {
		t.Fatalf("coalesced queue (%v) should be shorter than baseline (%v)",
			r.MeanQueueLen, rb.MeanQueueLen)
	}
	// Success should not degrade: the newest update per object is all
	// OD ever needs.
	if r.PSuccess < rb.PSuccess-0.05 {
		t.Fatalf("coalescing hurt psuccess: %v vs %v", r.PSuccess, rb.PSuccess)
	}
}

func TestPartitionedQueuesExtension(t *testing.T) {
	// Draining high-importance updates first keeps the high partition
	// fresher under TF.
	mk := func(part bool) float64 {
		p := model.DefaultParams()
		p.TxnRate = 15
		p.PartitionedQueues = part
		return MustRun(Config{Params: p, Policy: TF, Seed: 43, Duration: 80}).FOldHigh
	}
	if plain, part := mk(false), mk(true); part >= plain {
		t.Errorf("partitioned queues fold_h = %v, want below plain %v", part, plain)
	}
}

func TestConservationOfUpdates(t *testing.T) {
	// Every arrived update is accounted for exactly once: installed,
	// skipped, expired, overflow-dropped, OS-dropped, or still queued
	// or in flight at the end.
	for _, pol := range Policies {
		p := model.DefaultParams()
		p.TxnRate = 15
		r := MustRun(Config{Params: p, Policy: pol, Seed: 47, Duration: 50})
		accounted := r.UpdatesInstalled + r.UpdatesSkippedUnworthy +
			r.UpdatesExpired + r.UpdatesOverflowDropped + r.UpdatesOSDropped
		if accounted > r.UpdatesArrived {
			t.Errorf("%v: accounted %d > arrived %d", pol, accounted, r.UpdatesArrived)
		}
		// The residual is whatever is still queued: bounded by the
		// queue capacities.
		residual := r.UpdatesArrived - accounted
		if residual > p.UQMax+p.OSMax+1 {
			t.Errorf("%v: residual %d exceeds queue capacities", pol, residual)
		}
	}
}

func TestTxnConservation(t *testing.T) {
	for _, pol := range Policies {
		p := model.DefaultParams()
		r := MustRun(Config{Params: p, Policy: pol, Seed: 53, Duration: 50})
		resolvedSum := r.TxnsCommitted + r.TxnsAbortedDeadline + r.TxnsAbortedStale
		if resolvedSum != r.TxnsResolved {
			t.Errorf("%v: outcomes %d != resolved %d", pol, resolvedSum, r.TxnsResolved)
		}
		if r.TxnsResolved > r.TxnsArrived {
			t.Errorf("%v: resolved %d > arrived %d", pol, r.TxnsResolved, r.TxnsArrived)
		}
		// In-flight residue at the end is at most a handful.
		if r.TxnsArrived-r.TxnsResolved > 25 {
			t.Errorf("%v: %d transactions unresolved", pol, r.TxnsArrived-r.TxnsResolved)
		}
		if r.PSuccess > 1 || r.PMissedDeadline > 1 || r.PSuccessGivenNonTardy > 1 {
			t.Errorf("%v: fraction out of range: %+v", pol, r)
		}
	}
}

func TestFoldFractionsBounded(t *testing.T) {
	for _, pol := range Policies {
		for _, crit := range []model.StalenessCriterion{
			model.MaxAge, model.UnappliedUpdate, model.UnappliedUpdateStrict,
		} {
			p := model.DefaultParams()
			p.Staleness = crit
			r := MustRun(Config{Params: p, Policy: pol, Seed: 59, Duration: 30})
			if r.FOldLow < 0 || r.FOldLow > 1 || r.FOldHigh < 0 || r.FOldHigh > 1 {
				t.Errorf("%v/%v: fold out of range: %v/%v", pol, crit, r.FOldLow, r.FOldHigh)
			}
		}
	}
}

func TestMetricsWarmupChangesWindow(t *testing.T) {
	p := model.DefaultParams()
	p.MetricsWarmup = 10
	r := MustRun(Config{Params: p, Policy: TF, Seed: 61, Duration: 60})
	if r.Duration != 50 {
		t.Fatalf("measured duration = %v, want 50", r.Duration)
	}
}

func TestPeriodicUpdatesKeepDataFresh(t *testing.T) {
	// The §2 periodic model: every object refreshed every 2 s with a
	// 7 s maximum age — under UF essentially nothing is ever stale.
	p := model.DefaultParams()
	p.PeriodicPeriod = 2
	r := MustRun(Config{Params: p, Policy: UF, Seed: 67, Duration: 60})
	if r.FOldLow > 0.01 || r.FOldHigh > 0.01 {
		t.Fatalf("periodic refresh: fold = %v/%v, want about zero", r.FOldLow, r.FOldHigh)
	}
	if r.UpdatesArrived == 0 {
		t.Fatal("periodic source produced no updates")
	}
	// Rate check: 1000 objects / 2 s = 500 updates/s.
	rate := float64(r.UpdatesArrived) / 60
	if rate < 450 || rate > 550 {
		t.Fatalf("periodic update rate = %v, want about 500", rate)
	}
}

func TestCombinedStalenessIsAtLeastMA(t *testing.T) {
	p := model.DefaultParams()
	p.TxnRate = 15
	ma := MustRun(Config{Params: p, Policy: TF, Seed: 71, Duration: 60})
	p.Staleness = model.CombinedMAUU
	comb := MustRun(Config{Params: p, Policy: TF, Seed: 71, Duration: 60})
	if comb.FOldLow+1e-9 < ma.FOldLow {
		t.Fatalf("combined fold_l = %v below MA fold_l = %v", comb.FOldLow, ma.FOldLow)
	}
	if comb.FOldLow > 1 || comb.FOldHigh > 1 {
		t.Fatalf("combined fold out of range: %v/%v", comb.FOldLow, comb.FOldHigh)
	}
}

func TestResponseTimesReported(t *testing.T) {
	p := model.DefaultParams()
	r := MustRun(Config{Params: p, Policy: TF, Seed: 73, Duration: 60})
	// Committed transactions take at least their computation time
	// (~0.12 s) and at most estimate + max slack (~1.12 s).
	if r.ResponseMean < 0.1 || r.ResponseMean > 1.2 {
		t.Fatalf("ResponseMean = %v", r.ResponseMean)
	}
	if r.ResponseP95 < r.ResponseMean {
		t.Fatalf("p95 %v below mean %v", r.ResponseP95, r.ResponseMean)
	}
}

func TestBurstyStreamHurtsFreshness(t *testing.T) {
	// At the same average rate, a bursty stream overflows the
	// system's update budget during bursts; the backlog ages and
	// freshness suffers relative to the smooth stream.
	p := model.DefaultParams()
	p.TxnRate = 8
	smooth := MustRun(Config{Params: p, Policy: TF, Seed: 89, Duration: 100})
	p.BurstFactor = 8
	bursty := MustRun(Config{Params: p, Policy: TF, Seed: 89, Duration: 100})
	if bursty.UpdatesArrived < smooth.UpdatesArrived/2 ||
		bursty.UpdatesArrived > smooth.UpdatesArrived*2 {
		t.Fatalf("bursty average rate drifted: %d vs %d arrivals",
			bursty.UpdatesArrived, smooth.UpdatesArrived)
	}
	if bursty.FOldLow <= smooth.FOldLow {
		t.Fatalf("bursty fold_l = %v should exceed smooth %v",
			bursty.FOldLow, smooth.FOldLow)
	}
}

func TestTraceDrivenRunMatchesSynthetic(t *testing.T) {
	// Record the synthetic stream to a trace and replay it: the
	// update-side metrics must match the synthetic run exactly.
	p := model.DefaultParams()
	p.TxnRate = 0 // isolate the update path
	base := MustRun(Config{Params: p, Policy: TF, Seed: 97, Duration: 20})

	var sb strings.Builder
	gen := workload.NewUpdateGenerator(&p, stats.NewRNG(97, 0x5DEECE66D).Split())
	_ = gen
	// Regenerate the exact stream the run used: same derivation as
	// sched.Run (root split order: updates first).
	root := stats.NewRNG(97, 0x5DEECE66D)
	ug := workload.NewUpdateGenerator(&p, root.Split())
	for {
		u := ug.Next()
		if u == nil || u.ArrivalTime > 20 {
			break
		}
		sb.WriteString(workload.WriteTraceLine(u) + "\n")
	}
	replay := MustRunTrace(t, Config{
		Params: p, Policy: TF, Seed: 97, Duration: 20,
		UpdateTrace: strings.NewReader(sb.String()),
	})
	if replay.UpdatesArrived != base.UpdatesArrived ||
		replay.UpdatesInstalled != base.UpdatesInstalled ||
		replay.FOldLow != base.FOldLow {
		t.Fatalf("replay diverged:\nbase   %+v\nreplay %+v", base, replay)
	}
}

// MustRunTrace is a test helper for trace-driven runs.
func MustRunTrace(t *testing.T, cfg Config) metrics.Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTraceDrivenRunSurfacesErrors(t *testing.T) {
	p := model.DefaultParams()
	_, err := Run(Config{
		Params: p, Policy: TF, Seed: 1, Duration: 5,
		UpdateTrace: strings.NewReader("garbage line\n"),
	})
	if err == nil {
		t.Fatal("malformed trace should fail the run")
	}
}

func TestFig6SUDipAndRecovery(t *testing.T) {
	// The paper's most distinctive curve: SU's psuc|nontardy dips as
	// load grows (low-value transactions still complete but read the
	// stale low partition) and then recovers at overload (only
	// high-value transactions survive, and SU keeps their data
	// fresh).
	get := func(rate float64) float64 {
		p := model.DefaultParams()
		p.TxnRate = rate
		r := MustRun(Config{Params: p, Policy: SU, Seed: 101, Duration: 100})
		return r.PSuccessGivenNonTardy
	}
	light, mid, heavy := get(5), get(10), get(25)
	if !(mid < light && mid < heavy) {
		t.Fatalf("SU dip missing: %.3f (5) -> %.3f (10) -> %.3f (25)", light, mid, heavy)
	}
}

func TestFig3SaturationKnee(t *testing.T) {
	// Total utilization reaches 1 at about lambda_t = 10 for every
	// algorithm and is clearly below it at lambda_t = 5.
	for _, pol := range Policies {
		p := model.DefaultParams()
		p.TxnRate = 5
		light := MustRun(Config{Params: p, Policy: pol, Seed: 103, Duration: 60})
		if tot := light.RhoTxn + light.RhoUpdate; tot > 0.9 {
			t.Errorf("%v: utilization %v at lambda_t=5, want < 0.9", pol, tot)
		}
		p.TxnRate = 12
		loaded := MustRun(Config{Params: p, Policy: pol, Seed: 103, Duration: 60})
		if tot := loaded.RhoTxn + loaded.RhoUpdate; tot < 0.97 {
			t.Errorf("%v: utilization %v at lambda_t=12, want about 1", pol, tot)
		}
	}
}
