package sched

// Property tests: whole-simulation invariants that must hold for any
// reasonable parameter combination, policy and seed.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// randomParams derives a valid random configuration from a seed.
func randomParams(r *rand.Rand) model.Params {
	p := model.DefaultParams()
	p.UpdateRate = float64(r.Intn(600))
	p.TxnRate = float64(1 + r.Intn(25))
	p.PUpdateLow = r.Float64()
	p.PTxnLow = r.Float64()
	p.NLow = 50 + r.Intn(500)
	p.NHigh = 50 + r.Intn(500)
	p.MaxAgeDelta = 1 + r.Float64()*9
	p.MeanUpdateAge = r.Float64() * 0.5
	p.PView = r.Float64()
	p.XUpdate = float64(r.Intn(30000))
	p.XQueue = float64(r.Intn(200))
	p.XScan = float64(r.Intn(200))
	p.XSwitch = float64(r.Intn(2000))
	p.Order = model.QueueOrder(r.Intn(2))
	p.Staleness = []model.StalenessCriterion{
		model.MaxAge, model.UnappliedUpdate,
		model.UnappliedUpdateStrict, model.CombinedMAUU,
	}[r.Intn(4)]
	p.OnStale = model.StaleAction(r.Intn(2))
	p.CoalesceQueue = r.Intn(2) == 0
	p.PartitionedQueues = r.Intn(2) == 0
	p.FeasibleDeadline = r.Intn(4) > 0
	p.TxnPreemption = r.Intn(4) == 0
	return p
}

// TestQuickRunInvariants runs short simulations over random
// configurations and checks the invariants that must always hold.
func TestQuickRunInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("random-config sweep is slow")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomParams(r)
		pol := AllPolicies[r.Intn(len(AllPolicies))]
		res, err := Run(Config{
			Params:   p,
			Policy:   pol,
			Seed:     uint64(seed) ^ 0xabcdef,
			Duration: 10,
		})
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		check := func(ok bool, what string) bool {
			if !ok {
				t.Logf("violated: %s (policy %v, params %+v)", what, pol, p)
			}
			return ok
		}
		okAll := true
		okAll = check(res.RhoTxn >= 0 && res.RhoUpdate >= 0, "non-negative utilization") && okAll
		okAll = check(res.RhoTxn+res.RhoUpdate <= 1+1e-6, "utilization at most 1") && okAll
		okAll = check(res.PMissedDeadline >= 0 && res.PMissedDeadline <= 1, "pMD in range") && okAll
		okAll = check(res.PSuccess >= 0 && res.PSuccess <= 1, "psuccess in range") && okAll
		okAll = check(res.PSuccessGivenNonTardy >= 0 && res.PSuccessGivenNonTardy <= 1,
			"psuc|nontardy in range") && okAll
		okAll = check(res.PSuccess <= 1-res.PMissedDeadline+1e-9,
			"successes cannot exceed non-tardy fraction") && okAll
		okAll = check(res.FOldLow >= 0 && res.FOldLow <= 1+1e-9, "fold_l in range") && okAll
		okAll = check(res.FOldHigh >= 0 && res.FOldHigh <= 1+1e-9, "fold_h in range") && okAll
		okAll = check(res.AvgValuePerSecond >= 0, "AV non-negative") && okAll
		okAll = check(res.TxnsCommitted+res.TxnsAbortedDeadline+res.TxnsAbortedStale ==
			res.TxnsResolved, "transaction outcome conservation") && okAll
		okAll = check(res.TxnsResolved <= res.TxnsArrived, "resolved at most arrived") && okAll
		accounted := res.UpdatesInstalled + res.UpdatesSkippedUnworthy +
			res.UpdatesExpired + res.UpdatesOverflowDropped + res.UpdatesOSDropped
		okAll = check(accounted <= res.UpdatesArrived, "update conservation") && okAll
		okAll = check(res.ResponseMean >= 0 && res.ResponseP95 >= res.ResponseMean-1e-9 ||
			res.TxnsCommitted == 0, "response time ordering") && okAll
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminismAcrossConfigs: equal (config, seed) pairs give
// identical results for random configurations.
func TestQuickDeterminismAcrossConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("random-config sweep is slow")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomParams(r)
		pol := AllPolicies[r.Intn(len(AllPolicies))]
		cfg := Config{Params: p, Policy: pol, Seed: uint64(seed), Duration: 5}
		a, err := Run(cfg)
		if err != nil {
			return false
		}
		b, err := Run(cfg)
		if err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
