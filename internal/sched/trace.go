package sched

import (
	"fmt"
	"io"

	"repro/internal/model"
)

// TraceKind labels a scheduling event for the optional trace stream.
type TraceKind int

const (
	// TraceTxnArrived: a transaction entered the system.
	TraceTxnArrived TraceKind = iota
	// TraceTxnStarted: a transaction was dispatched for the first time.
	TraceTxnStarted
	// TraceTxnPreempted: the running transaction was suspended by
	// update work (UF/SU).
	TraceTxnPreempted
	// TraceTxnResumed: a suspended transaction took the CPU back.
	TraceTxnResumed
	// TraceTxnCommitted: a transaction committed before its deadline.
	TraceTxnCommitted
	// TraceTxnAbortedDeadline: a firm-deadline or feasibility abort.
	TraceTxnAbortedDeadline
	// TraceTxnAbortedStale: an abort caused by a stale read.
	TraceTxnAbortedStale
	// TraceUpdateArrived: an update reached the OS queue.
	TraceUpdateArrived
	// TraceUpdateInstalled: a value was written into the database.
	TraceUpdateInstalled
	// TraceUpdateSkipped: an update was discarded as unworthy or
	// superseded.
	TraceUpdateSkipped
	// TraceUpdateExpired: a queued update exceeded the maximum age.
	TraceUpdateExpired
	// TraceUpdateDropped: an update was rejected by a full queue.
	TraceUpdateDropped
)

// String returns a stable lowercase event name.
func (k TraceKind) String() string {
	switch k {
	case TraceTxnArrived:
		return "txn-arrived"
	case TraceTxnStarted:
		return "txn-started"
	case TraceTxnPreempted:
		return "txn-preempted"
	case TraceTxnResumed:
		return "txn-resumed"
	case TraceTxnCommitted:
		return "txn-committed"
	case TraceTxnAbortedDeadline:
		return "txn-aborted-deadline"
	case TraceTxnAbortedStale:
		return "txn-aborted-stale"
	case TraceUpdateArrived:
		return "update-arrived"
	case TraceUpdateInstalled:
		return "update-installed"
	case TraceUpdateSkipped:
		return "update-skipped"
	case TraceUpdateExpired:
		return "update-expired"
	case TraceUpdateDropped:
		return "update-dropped"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one scheduling event.
type TraceEvent struct {
	// Time is the simulated time of the event.
	Time float64
	// Kind classifies the event.
	Kind TraceKind
	// Txn is the transaction ID for txn-* events, zero otherwise.
	Txn uint64
	// Object is the view object for update-* events, -1 otherwise.
	Object model.ObjectID
}

// Tracer receives scheduling events during a run. Implementations
// must be fast; they run inline with the simulation.
type Tracer interface {
	Trace(TraceEvent)
}

// WriterTracer writes one line per event to an io.Writer.
type WriterTracer struct {
	W io.Writer
}

// Trace formats the event as "time kind txn=N obj=M".
func (t WriterTracer) Trace(e TraceEvent) {
	fmt.Fprintf(t.W, "%.6f %s txn=%d obj=%d\n", e.Time, e.Kind, e.Txn, e.Object)
}

// CountingTracer tallies events by kind; useful in tests and quick
// diagnostics.
type CountingTracer struct {
	Counts map[TraceKind]int
}

// NewCountingTracer returns an empty counting tracer.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{Counts: make(map[TraceKind]int)}
}

// Trace increments the event's counter.
func (t *CountingTracer) Trace(e TraceEvent) { t.Counts[e.Kind]++ }

// traceTxn emits a transaction event if tracing is enabled.
func (c *Controller) traceTxn(kind TraceKind, tr *txnRun) {
	if c.tracer == nil {
		return
	}
	c.tracer.Trace(TraceEvent{Time: c.sim.Now(), Kind: kind, Txn: tr.txn.ID, Object: -1})
}

// traceUpdate emits an update event if tracing is enabled.
func (c *Controller) traceUpdate(kind TraceKind, obj model.ObjectID) {
	if c.tracer == nil {
		return
	}
	c.tracer.Trace(TraceEvent{Time: c.sim.Now(), Kind: kind, Object: obj})
}
