package sched

import (
	"math"
	"testing"

	"repro/internal/model"
)

func newTestQueues(capacity int, coalesce bool) *classQueues {
	p := model.DefaultParams()
	p.UQMax = capacity
	p.CoalesceQueue = coalesce
	return newClassQueues(&p, 7)
}

func cu(seq uint64, obj model.ObjectID, class model.Importance, gen float64) *model.Update {
	return &model.Update{Seq: seq, Object: obj, Class: class, GenTime: gen}
}

func TestClassQueuesMergedFIFO(t *testing.T) {
	cq := newTestQueues(100, false)
	cq.Insert(cu(1, 0, model.Low, 5))
	cq.Insert(cu(2, 500, model.High, 3))
	cq.Insert(cu(3, 1, model.Low, 1))
	var gens []float64
	for cq.Len() > 0 {
		gens = append(gens, cq.Pop(model.FIFO, -1).GenTime)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("merged FIFO = %v, want %v", gens, want)
		}
	}
}

func TestClassQueuesMergedLIFO(t *testing.T) {
	cq := newTestQueues(100, false)
	cq.Insert(cu(1, 0, model.Low, 5))
	cq.Insert(cu(2, 500, model.High, 9))
	cq.Insert(cu(3, 1, model.Low, 1))
	var gens []float64
	for cq.Len() > 0 {
		gens = append(gens, cq.Pop(model.LIFO, -1).GenTime)
	}
	want := []float64{9, 5, 1}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("merged LIFO = %v, want %v", gens, want)
		}
	}
}

func TestClassQueuesMergedTieBreak(t *testing.T) {
	cq := newTestQueues(100, false)
	cq.Insert(cu(2, 500, model.High, 5))
	cq.Insert(cu(1, 0, model.Low, 5))
	// Equal generations: lower sequence wins FIFO.
	if got := cq.Pop(model.FIFO, -1).Seq; got != 1 {
		t.Fatalf("FIFO tie-break popped seq %d, want 1", got)
	}
}

func TestClassQueuesClassPop(t *testing.T) {
	cq := newTestQueues(100, false)
	cq.Insert(cu(1, 0, model.Low, 1))
	cq.Insert(cu(2, 500, model.High, 2))
	if got := cq.Pop(model.FIFO, int(model.High)); got.Class != model.High {
		t.Fatalf("class pop returned %v update", got.Class)
	}
	if cq.LenClass(model.High) != 0 || cq.LenClass(model.Low) != 1 {
		t.Fatal("class lengths wrong after class pop")
	}
}

func TestClassQueuesJointCapacity(t *testing.T) {
	cq := newTestQueues(3, false)
	cq.Insert(cu(1, 0, model.Low, 1))
	cq.Insert(cu(2, 500, model.High, 2))
	cq.Insert(cu(3, 1, model.Low, 3))
	ev := cq.Insert(cu(4, 501, model.High, 4))
	if len(ev) != 1 || ev[0].GenTime != 1 {
		t.Fatalf("joint overflow evicted %v, want the globally oldest (gen 1)", ev)
	}
	if cq.Len() != 3 {
		t.Fatalf("Len = %d, want 3", cq.Len())
	}
}

func TestClassQueuesEmptyPops(t *testing.T) {
	cq := newTestQueues(10, false)
	if cq.Pop(model.FIFO, -1) != nil || cq.Pop(model.LIFO, -1) != nil {
		t.Fatal("pop on empty queues should be nil")
	}
	if cq.Pop(model.FIFO, int(model.Low)) != nil {
		t.Fatal("class pop on empty queue should be nil")
	}
}

func TestClassQueuesTakeForAndNewestFor(t *testing.T) {
	cq := newTestQueues(100, false)
	cq.Insert(cu(1, 42, model.Low, 1))
	cq.Insert(cu(2, 42, model.Low, 7))
	cq.Insert(cu(3, 43, model.Low, 3))
	if got := cq.NewestFor(model.Low, 42); got.GenTime != 7 {
		t.Fatalf("NewestFor gen = %v, want 7", got.GenTime)
	}
	newest, sup := cq.TakeFor(model.Low, 42)
	if newest.GenTime != 7 || len(sup) != 1 {
		t.Fatalf("TakeFor = (%v, %d superseded)", newest.GenTime, len(sup))
	}
	if cq.Len() != 1 {
		t.Fatalf("Len after TakeFor = %d", cq.Len())
	}
}

func TestClassQueuesDiscardBothClasses(t *testing.T) {
	cq := newTestQueues(100, false)
	cq.Insert(cu(1, 0, model.Low, 1))
	cq.Insert(cu(2, 500, model.High, 2))
	cq.Insert(cu(3, 1, model.Low, 9))
	out := cq.DiscardOlderGen(5)
	if len(out) != 2 {
		t.Fatalf("discarded %d updates, want 2", len(out))
	}
	if cq.Len() != 1 {
		t.Fatalf("Len = %d after discard", cq.Len())
	}
}

func TestClassQueuesCoalescing(t *testing.T) {
	cq := newTestQueues(100, true)
	cq.Insert(cu(1, 42, model.Low, 1))
	ev := cq.Insert(cu(2, 42, model.Low, 7))
	if len(ev) != 1 || ev[0].Seq != 1 {
		t.Fatalf("coalescing eviction = %v", ev)
	}
	if cq.Len() != 1 {
		t.Fatalf("coalesced Len = %d, want 1", cq.Len())
	}
}

func TestRemoveCost(t *testing.T) {
	if removeCost(100, 0) != 0 || removeCost(100, 1) != 0 {
		t.Fatal("cost for n<=1 should be zero")
	}
	if removeCost(0, 50) != 0 {
		t.Fatal("zero xqueue should cost nothing")
	}
	if got, want := removeCost(100, 10), 100*math.Log(10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("removeCost = %v, want %v", got, want)
	}
}
