// Package sched implements the heart of the paper: the controller of
// §3.1 that multiplexes a single CPU between the update-installation
// process and firm-deadline transactions, and the four scheduling
// algorithms of §4 — Updates First (UF), Transactions First (TF),
// Split Updates (SU) and On Demand (OD) — plus the Fixed CPU fraction
// (FC) policy sketched as future work in §7.
//
// The controller is driven by the deterministic event kernel in
// internal/sim: every piece of CPU work (a transaction computation
// segment, a view-object lookup, a queue receive, an update install)
// is a "job" with an instruction budget converted to seconds, and
// scheduling decisions happen at job boundaries and at arrivals,
// exactly as in the conceptual model.
package sched

import (
	"fmt"
	"strings"
)

// Policy selects the scheduling algorithm of §4.
type Policy int

const (
	// UF (Updates First, §4.1) installs every update the moment it
	// arrives, preempting any running transaction; no update queue is
	// used.
	UF Policy = iota
	// TF (Transactions First, §4.2) gives transactions strict
	// priority; updates are received into the update queue and
	// installed only when no transactions are runnable.
	TF
	// SU (Split Updates, §4.3) treats updates to high-importance
	// objects like UF and updates to low-importance objects like TF.
	SU
	// OD (On Demand, §4.4) is TF plus in-line refresh: a transaction
	// that reads a stale object first searches the update queue and
	// applies a suitable pending update.
	OD
	// FC (Fixed CPU fraction, §7 future work) reserves a configured
	// long-run CPU share for the update process using deficit
	// accounting, with no preemption.
	FC
)

// Policies lists the four algorithms evaluated in the paper, in the
// order the figures present them.
var Policies = []Policy{UF, TF, SU, OD}

// AllPolicies additionally includes the FC extension.
var AllPolicies = []Policy{UF, TF, SU, OD, FC}

// String returns the paper's abbreviation for the policy.
func (p Policy) String() string {
	switch p {
	case UF:
		return "UF"
	case TF:
		return "TF"
	case SU:
		return "SU"
	case OD:
		return "OD"
	case FC:
		return "FC"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a (case-insensitive) policy abbreviation.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "UF":
		return UF, nil
	case "TF":
		return TF, nil
	case "SU":
		return SU, nil
	case "OD":
		return OD, nil
	case "FC":
		return FC, nil
	default:
		return 0, fmt.Errorf("sched: unknown policy %q (want UF, TF, SU, OD or FC)", s)
	}
}

// usesUpdateQueue reports whether the policy maintains an internal
// update queue. UF installs straight from the OS queue (§4.1).
func (p Policy) usesUpdateQueue() bool { return p != UF }
