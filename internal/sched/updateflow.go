package sched

import (
	"repro/internal/metrics"
	"repro/internal/model"
)

// startInstallFromOS is the Updates First path (§4.1): the update at
// the head of the OS queue is installed directly, with no internal
// update queue. Updates are applied in arrival order; the worthiness
// check still skips an update whose generation is older than the value
// already installed (possible with variable network delay).
func (c *Controller) startInstallFromOS() {
	u := c.osq.Poll()
	if u == nil {
		c.dispatch()
		return
	}
	worthy := u.GenTime > c.tracker.GenTime(u.Object)
	dur := c.p.Seconds(c.p.XLookup) + c.takePendingSwitch() + c.ioCost(u.Object)
	if worthy {
		dur += c.updateSec
	}
	c.startJob(&job{
		kind: metrics.CPUUpdate,
		dur:  dur,
		onDone: func() {
			if worthy {
				c.tracker.Installed(u.Object, u.GenTime, c.sim.Now())
				c.col.UpdateInstalled()
				c.traceUpdate(TraceUpdateInstalled, u.Object)
			} else {
				c.col.UpdateSkippedUnworthy()
				c.traceUpdate(TraceUpdateSkipped, u.Object)
			}
			c.dispatch()
		},
	})
}

// startReceive is step 2-3 of Fig. 2 for the queue-based policies: the
// controller drains the whole OS queue into the update queue in one
// burst ("all of the updates will be received at once", §3.3). The
// queueing cost is xqueue·ln(n) per insert plus any pending context-
// switch charge. When that cost is zero the receive happens inline and
// false is returned; otherwise a CPU job is started (its completion
// re-enters dispatch) and true is returned.
func (c *Controller) startReceive() bool {
	batch := make([]*model.Update, 0, c.osq.Len())
	for {
		u := c.osq.Poll()
		if u == nil {
			break
		}
		batch = append(batch, u)
	}
	cost := c.takePendingSwitch()
	n := c.uq.Len()
	for i := range batch {
		cost += c.p.Seconds(removeCost(c.p.XQueue, n+i+1))
	}
	enqueue := func() {
		now := c.sim.Now()
		for _, u := range batch {
			c.tracker.Received(u.Object, u.GenTime, now)
			for _, ev := range c.uq.Insert(u) {
				c.tracker.Removed(ev.Object, ev.GenTime, now)
				c.col.UpdateOverflowDropped()
				c.traceUpdate(TraceUpdateDropped, ev.Object)
			}
		}
	}
	if cost <= 0 {
		enqueue()
		return false
	}
	c.startJob(&job{
		kind: metrics.CPUUpdate,
		dur:  cost,
		onDone: func() {
			enqueue()
			c.dispatch()
		},
	})
	return true
}

// startInstallFromQueue installs one update from the update queue
// (step 4 of Fig. 2): pop per the FIFO/LIFO discipline, look the
// object up, skip if the database already holds a newer generation,
// otherwise apply.
func (c *Controller) startInstallFromQueue(class int) {
	n := c.uq.Len()
	u := c.uq.Pop(c.p.Order, class)
	if u == nil {
		c.dispatch()
		return
	}
	worthy := u.GenTime > c.tracker.GenTime(u.Object)
	dur := c.p.Seconds(removeCost(c.p.XQueue, n)+c.p.XLookup) +
		c.takePendingSwitch() + c.ioCost(u.Object)
	if worthy {
		dur += c.updateSec
	}
	c.startJob(&job{
		kind: metrics.CPUUpdate,
		dur:  dur,
		onDone: func() {
			now := c.sim.Now()
			if worthy {
				c.tracker.Installed(u.Object, u.GenTime, now)
				c.col.UpdateInstalled()
				c.traceUpdate(TraceUpdateInstalled, u.Object)
			} else {
				c.tracker.Removed(u.Object, u.GenTime, now)
				c.col.UpdateSkippedUnworthy()
				c.traceUpdate(TraceUpdateSkipped, u.Object)
			}
			c.dispatch()
		},
	})
}
