package sched

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// TestRunBitIdenticalUnderSameSeed is the dynamic counterpart of the
// striplint static rules: two runs with identical configuration and
// seed must produce byte-identical metric output, for every policy
// and every staleness criterion. A failure here means wall-clock
// time, global randomness, goroutine interleaving or map iteration
// order leaked into the simulator — exactly what
// `go run ./cmd/striplint ./...` forbids statically.
func TestRunBitIdenticalUnderSameSeed(t *testing.T) {
	criteria := []model.StalenessCriterion{
		model.MaxAge, model.UnappliedUpdate, model.UnappliedUpdateStrict,
	}
	for _, pol := range AllPolicies {
		for _, crit := range criteria {
			pol, crit := pol, crit
			t.Run(fmt.Sprintf("%s/%v", pol, crit), func(t *testing.T) {
				t.Parallel()
				p := model.DefaultParams()
				p.Staleness = crit
				cfg := Config{Params: p, Policy: pol, Seed: 42, Duration: 60}
				first := fmt.Sprintf("%#v", MustRun(cfg))
				second := fmt.Sprintf("%#v", MustRun(cfg))
				if first != second {
					t.Errorf("two runs with seed 42 diverged:\nfirst:  %s\nsecond: %s", first, second)
				}
			})
		}
	}
}

// TestRunSeedsActuallyMatter guards the guard: if the two-run
// comparison above passed because the seed were being ignored (every
// run identical regardless of seed), determinism would be vacuous.
func TestRunSeedsActuallyMatter(t *testing.T) {
	p := model.DefaultParams()
	cfg1 := Config{Params: p, Policy: TF, Seed: 1, Duration: 60}
	cfg2 := cfg1
	cfg2.Seed = 2
	a := fmt.Sprintf("%#v", MustRun(cfg1))
	b := fmt.Sprintf("%#v", MustRun(cfg2))
	if a == b {
		t.Error("different seeds produced identical results; the seed is not reaching the generators")
	}
}
