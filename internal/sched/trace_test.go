package sched

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestTraceKindStrings(t *testing.T) {
	kinds := []TraceKind{
		TraceTxnArrived, TraceTxnStarted, TraceTxnPreempted, TraceTxnResumed,
		TraceTxnCommitted, TraceTxnAbortedDeadline, TraceTxnAbortedStale,
		TraceUpdateArrived, TraceUpdateInstalled, TraceUpdateSkipped,
		TraceUpdateExpired, TraceUpdateDropped,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "TraceKind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
}

func TestCountingTracerDuringRun(t *testing.T) {
	tracer := NewCountingTracer()
	p := model.DefaultParams()
	p.TxnRate = 5
	r := MustRun(Config{Params: p, Policy: TF, Seed: 1, Duration: 10, Tracer: tracer})

	if got := tracer.Counts[TraceTxnArrived]; got != r.TxnsArrived {
		t.Errorf("txn-arrived events = %d, collector says %d", got, r.TxnsArrived)
	}
	if got := tracer.Counts[TraceTxnCommitted]; got != r.TxnsCommitted {
		t.Errorf("txn-committed events = %d, collector says %d", got, r.TxnsCommitted)
	}
	if got := tracer.Counts[TraceUpdateArrived]; got != r.UpdatesArrived {
		t.Errorf("update-arrived events = %d, collector says %d", got, r.UpdatesArrived)
	}
	if got := tracer.Counts[TraceUpdateInstalled]; got != r.UpdatesInstalled {
		t.Errorf("update-installed events = %d, collector says %d", got, r.UpdatesInstalled)
	}
	if got := tracer.Counts[TraceUpdateExpired]; got != r.UpdatesExpired {
		t.Errorf("update-expired events = %d, collector says %d", got, r.UpdatesExpired)
	}
	// Started transactions never exceed arrivals.
	if tracer.Counts[TraceTxnStarted] > tracer.Counts[TraceTxnArrived] {
		t.Error("more starts than arrivals")
	}
}

func TestTracePreemptionEvents(t *testing.T) {
	tracer := NewCountingTracer()
	p := model.DefaultParams()
	p.TxnRate = 10
	MustRun(Config{Params: p, Policy: UF, Seed: 2, Duration: 5, Tracer: tracer})
	if tracer.Counts[TraceTxnPreempted] == 0 {
		t.Fatal("UF at load must preempt transactions")
	}
	if tracer.Counts[TraceTxnResumed] == 0 {
		t.Fatal("preempted transactions must resume")
	}
	// TF never preempts.
	tf := NewCountingTracer()
	MustRun(Config{Params: p, Policy: TF, Seed: 2, Duration: 5, Tracer: tf})
	if tf.Counts[TraceTxnPreempted] != 0 {
		t.Fatalf("TF preempted %d times", tf.Counts[TraceTxnPreempted])
	}
}

func TestWriterTracerFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := WriterTracer{W: &buf}
	tr.Trace(TraceEvent{Time: 1.5, Kind: TraceUpdateInstalled, Object: 42})
	got := buf.String()
	if !strings.Contains(got, "update-installed") || !strings.Contains(got, "obj=42") ||
		!strings.HasPrefix(got, "1.5") {
		t.Fatalf("line = %q", got)
	}
}

func TestWriterTracerDuringRun(t *testing.T) {
	var buf bytes.Buffer
	p := model.DefaultParams()
	p.TxnRate = 2
	p.UpdateRate = 20
	MustRun(Config{Params: p, Policy: OD, Seed: 3, Duration: 2, Tracer: WriterTracer{W: &buf}})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 40 {
		t.Fatalf("trace produced only %d lines", len(lines))
	}
	// Times must be non-decreasing.
	prev := -1.0
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("malformed trace line %q", line)
		}
		tm, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("unparseable trace time in %q: %v", line, err)
		}
		if tm < prev {
			t.Fatalf("trace times go backwards: %q after %v", line, prev)
		}
		prev = tm
	}
}
