package sched

import (
	"container/heap"

	"repro/internal/model"
	"repro/internal/sim"
)

// txnRun is the controller-side execution state of one transaction:
// which stage it is in, how much of the current stage remains after
// preemptions, and the perfect-estimate remaining time used for value
// density and the feasible-deadline test.
type txnRun struct {
	txn *model.Txn

	// estRemaining is the remaining base execution time (computation
	// plus lookups) in seconds. OD's in-line scans and applies are
	// not part of the estimate, matching the paper's perfect-estimate
	// assumption.
	estRemaining float64

	// stage: 0 = pre-read computation, 1 = view reads, 2 = post-read
	// computation.
	stage int
	// readIdx is the index of the read being performed in stage 1.
	readIdx int
	// stageRemaining is the unexecuted seconds of the current base
	// job (set when a stage or read starts, decremented on
	// preemption).
	stageRemaining float64

	// abortPending marks a firm-deadline abort that must take effect
	// at the next flow continuation (set when the deadline fires
	// during a non-cancellable in-line install).
	abortPending bool

	// density is value / estRemaining at the time of the last ready-
	// queue push.
	density float64

	deadlineEv *sim.Event
	heapIndex  int
}

// resolved reports whether the transaction has committed or aborted.
func (tr *txnRun) resolved() bool {
	return tr.txn.State == model.TxnCommittedState ||
		tr.txn.State == model.TxnAbortedDeadline ||
		tr.txn.State == model.TxnAbortedStale
}

// readyQueue is a max-heap of pending transactions ordered by value
// density (§3.4), with FIFO tie-break on transaction ID. Resolved
// transactions are removed lazily at pop.
type readyQueue struct {
	h readyHeap
}

func (rq *readyQueue) Len() int { return rq.h.Len() }

// Push inserts tr with its current density.
func (rq *readyQueue) Push(tr *txnRun) {
	if tr.estRemaining > 0 {
		tr.density = tr.txn.Value / tr.estRemaining
	} else {
		tr.density = tr.txn.Value * 1e12
	}
	heap.Push(&rq.h, tr)
}

// Pop removes and returns the unresolved transaction with the highest
// value density, or nil when none remain.
func (rq *readyQueue) Pop() *txnRun {
	for rq.h.Len() > 0 {
		tr := heap.Pop(&rq.h).(*txnRun)
		if !tr.resolved() {
			return tr
		}
	}
	return nil
}

// Peek returns the highest-density unresolved transaction without
// removing it, discarding resolved entries it encounters.
func (rq *readyQueue) Peek() *txnRun {
	for rq.h.Len() > 0 {
		tr := rq.h[0]
		if !tr.resolved() {
			return tr
		}
		heap.Pop(&rq.h)
	}
	return nil
}

type readyHeap []*txnRun

func (h readyHeap) Len() int { return len(h) }

func (h readyHeap) Less(i, j int) bool {
	if h[i].density != h[j].density {
		return h[i].density > h[j].density
	}
	return h[i].txn.ID < h[j].txn.ID
}

func (h readyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}

func (h *readyHeap) Push(x any) {
	tr := x.(*txnRun)
	tr.heapIndex = len(*h)
	*h = append(*h, tr)
}

func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	tr := old[n-1]
	old[n-1] = nil
	tr.heapIndex = -1
	*h = old[:n-1]
	return tr
}
