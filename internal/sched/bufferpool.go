package sched

import "repro/internal/model"

// bufferPool models the page cache of a disk-resident database (§7
// lists disk residency as future work; §3.3 notes the paper's own
// model is memory-only). Each view object occupies one page; an
// access to a cached page is free, a miss stalls the single-threaded
// controller for the modelled I/O time. Replacement is LRU.
type bufferPool struct {
	capacity int
	table    map[model.ObjectID]*pageNode
	// Doubly linked list, most-recently-used at head.
	head, tail *pageNode
	hits       uint64
	misses     uint64
}

type pageNode struct {
	id         model.ObjectID
	prev, next *pageNode
}

// newBufferPool returns a pool holding up to capacity pages.
// Capacity must be positive.
func newBufferPool(capacity int) *bufferPool {
	if capacity <= 0 {
		panic("sched: buffer pool capacity must be positive")
	}
	return &bufferPool{
		capacity: capacity,
		table:    make(map[model.ObjectID]*pageNode, capacity),
	}
}

// access touches the object's page, faulting it in if absent, and
// reports whether the access hit the cache.
func (bp *bufferPool) access(id model.ObjectID) bool {
	if n, ok := bp.table[id]; ok {
		bp.hits++
		bp.moveToFront(n)
		return true
	}
	bp.misses++
	n := &pageNode{id: id}
	bp.table[id] = n
	bp.pushFront(n)
	if len(bp.table) > bp.capacity {
		bp.evictLRU()
	}
	return false
}

func (bp *bufferPool) pushFront(n *pageNode) {
	n.prev = nil
	n.next = bp.head
	if bp.head != nil {
		bp.head.prev = n
	}
	bp.head = n
	if bp.tail == nil {
		bp.tail = n
	}
}

func (bp *bufferPool) unlink(n *pageNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		bp.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		bp.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (bp *bufferPool) moveToFront(n *pageNode) {
	if bp.head == n {
		return
	}
	bp.unlink(n)
	bp.pushFront(n)
}

func (bp *bufferPool) evictLRU() {
	victim := bp.tail
	if victim == nil {
		return
	}
	bp.unlink(victim)
	delete(bp.table, victim.id)
}

// len returns the number of resident pages.
func (bp *bufferPool) len() int { return len(bp.table) }

// hitRatio returns hits / accesses, or zero before any access.
func (bp *bufferPool) hitRatio() float64 {
	total := bp.hits + bp.misses
	if total == 0 {
		return 0
	}
	return float64(bp.hits) / float64(total)
}
