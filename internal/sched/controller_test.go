package sched

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// harness wires a controller to a simulator so tests can inject
// hand-built updates and transactions at exact instants.
type harness struct {
	s   *sim.Simulator
	c   *Controller
	trk trackerWithGen
	col *metrics.Collector
	p   *model.Params
	seq uint64
}

func newHarness(policy Policy, mutate func(*model.Params)) *harness {
	p := model.DefaultParams()
	p.UpdateRate = 0 // tests inject arrivals explicitly
	p.TxnRate = 0
	if mutate != nil {
		mutate(&p)
	}
	s := sim.New()
	trk := metrics.NewTracker(&p).(trackerWithGen)
	col := metrics.NewCollector(&p)
	return &harness{
		s:   s,
		c:   newController(s, &p, policy, trk, col, 99),
		trk: trk,
		col: col,
		p:   &p,
	}
}

// update injects an update arriving at the given time carrying gen.
func (h *harness) update(at float64, obj model.ObjectID, gen float64) *model.Update {
	h.seq++
	u := &model.Update{
		Seq:         h.seq,
		Object:      obj,
		Class:       h.p.ObjectClass(obj),
		GenTime:     gen,
		ArrivalTime: at,
	}
	h.s.At(at, func() { h.c.onUpdateArrival(u) })
	return u
}

// txn injects a transaction with explicit shape. Slack is the margin
// beyond the perfect estimate.
func (h *harness) txn(at float64, value, comp, slack float64, reads ...model.ObjectID) *model.Txn {
	h.seq++
	t := &model.Txn{
		ID:          h.seq,
		Class:       model.Low,
		Value:       value,
		ArrivalTime: at,
		CompSeconds: comp,
		ReadSet:     reads,
		PView:       h.p.PView,
	}
	t.Deadline = at + estimateSeconds(h.p, t) + slack
	h.s.At(at, func() { h.c.onTxnArrival(t) })
	return t
}

// run finishes the simulation at end and returns the metrics.
func (h *harness) run(end float64) metrics.Result {
	h.s.Run(end)
	h.c.finish(end)
	h.trk.Finish(end)
	h.col.Finish(end)
	return h.col.Result(h.trk)
}

const installSec = 24000.0 / 50e6 // xlookup+xupdate at baseline ips
const lookupSec = 4000.0 / 50e6

func TestUFPreemptsRunningTransaction(t *testing.T) {
	h := newHarness(UF, nil)
	txn := h.txn(0, 1, 0.1, 1.0)
	h.update(0.05, 7, 0.04)
	r := h.run(1)
	if txn.State != model.TxnCommittedState {
		t.Fatalf("txn state = %v", txn.State)
	}
	// The install (0.48 ms) delays the commit past 0.1.
	want := 0.1 + installSec
	if math.Abs(txn.FinishTime-want) > 1e-9 {
		t.Fatalf("commit at %v, want %v (preempted by install)", txn.FinishTime, want)
	}
	if r.UpdatesInstalled != 1 {
		t.Fatalf("installed = %d", r.UpdatesInstalled)
	}
}

func TestTFDoesNotPreempt(t *testing.T) {
	h := newHarness(TF, nil)
	txn := h.txn(0, 1, 0.1, 1.0)
	u := h.update(0.05, 7, 0.04)
	h.run(1)
	if math.Abs(txn.FinishTime-0.1) > 1e-9 {
		t.Fatalf("commit at %v, want exactly 0.1 (no preemption)", txn.FinishTime)
	}
	// The update is installed right after, once the system is idle.
	if got := h.trk.GenTime(u.Object); got != 0.04 {
		t.Fatalf("object generation = %v, update not installed", got)
	}
}

func TestTFTransactionWaitsForRunningInstall(t *testing.T) {
	h := newHarness(TF, nil)
	h.update(0.001, 7, 0.0005) // installs immediately (idle)
	txn := h.txn(0.001+installSec/2, 1, 0.1, 1.0)
	h.run(1)
	want := 0.001 + installSec + 0.1 // waits for the install to finish
	if math.Abs(txn.FinishTime-want) > 1e-9 {
		t.Fatalf("commit at %v, want %v (no update preemption)", txn.FinishTime, want)
	}
}

func TestSUSplitsByImportance(t *testing.T) {
	// High-importance update preempts; low-importance waits.
	h := newHarness(SU, nil)
	txnA := h.txn(0, 1, 0.1, 1.0)
	h.update(0.05, 600, 0.04) // high partition (>= NLow=500)
	h.run(0.5)
	if math.Abs(txnA.FinishTime-(0.1+installSec)) > 1e-9 {
		t.Fatalf("high update should preempt: commit at %v", txnA.FinishTime)
	}

	h2 := newHarness(SU, nil)
	txnB := h2.txn(0, 1, 0.1, 1.0)
	u := h2.update(0.05, 7, 0.04) // low partition
	h2.run(0.5)
	if math.Abs(txnB.FinishTime-0.1) > 1e-9 {
		t.Fatalf("low update should not preempt: commit at %v", txnB.FinishTime)
	}
	if got := h2.trk.GenTime(u.Object); got != 0.04 {
		t.Fatal("low update should install once idle")
	}
}

func TestWorthinessSkipsStaleGeneration(t *testing.T) {
	// Newer generation arrives first (out-of-order network): the
	// second update is skipped by the worthiness check.
	h := newHarness(TF, nil)
	h.update(0.1, 7, 0.09)
	h.update(0.2, 7, 0.03) // older generation
	r := h.run(1)
	if r.UpdatesInstalled != 1 || r.UpdatesSkippedUnworthy != 1 {
		t.Fatalf("installed=%d skipped=%d, want 1/1",
			r.UpdatesInstalled, r.UpdatesSkippedUnworthy)
	}
	if got := h.trk.GenTime(7); got != 0.09 {
		t.Fatalf("generation = %v, want 0.09", got)
	}
}

func TestFirmDeadlineAbortsMidRun(t *testing.T) {
	h := newHarness(TF, func(p *model.Params) { p.FeasibleDeadline = false })
	txn := h.txn(0, 1, 1.0, 0)
	txn.Deadline = 0.5 // will fire mid-execution
	r := h.run(2)
	if txn.State != model.TxnAbortedDeadline {
		t.Fatalf("state = %v, want aborted-deadline", txn.State)
	}
	if math.Abs(txn.FinishTime-0.5) > 1e-9 {
		t.Fatalf("aborted at %v, want 0.5", txn.FinishTime)
	}
	// The wasted CPU is still charged to transactions.
	if math.Abs(r.RhoTxn-0.25) > 1e-9 { // 0.5s of 2s
		t.Fatalf("rho_t = %v, want 0.25", r.RhoTxn)
	}
}

func TestFeasibleDeadlineAbortsBeforeStart(t *testing.T) {
	h := newHarness(TF, nil)
	txn := h.txn(0, 1, 1.0, 0)
	txn.Deadline = 0.5 // estimate is 1.0 > 0.5: hopeless
	r := h.run(2)
	if txn.State != model.TxnAbortedDeadline {
		t.Fatalf("state = %v", txn.State)
	}
	if txn.FinishTime != 0 {
		t.Fatalf("aborted at %v, want immediately at arrival", txn.FinishTime)
	}
	if r.RhoTxn != 0 {
		t.Fatalf("rho_t = %v, hopeless txn should cost nothing", r.RhoTxn)
	}
}

func TestValueDensityOrdering(t *testing.T) {
	h := newHarness(TF, nil)
	h.txn(0, 1, 0.1, 2.0) // occupies CPU [0, 0.1]
	lo := h.txn(0.01, 1, 0.1, 2.0)
	hi := h.txn(0.02, 5, 0.1, 2.0)
	h.run(1)
	if !(hi.FinishTime < lo.FinishTime) {
		t.Fatalf("high-density txn finished at %v, after low-density at %v",
			hi.FinishTime, lo.FinishTime)
	}
}

func TestStaleReadRecordedWithoutAbort(t *testing.T) {
	h := newHarness(TF, nil)
	// Object 7 was never updated: stale after Delta (7s).
	txn := h.txn(8, 1, 0.1, 1.0, 7)
	r := h.run(10)
	if txn.State != model.TxnCommittedState {
		t.Fatalf("state = %v", txn.State)
	}
	if !txn.ReadStale {
		t.Fatal("stale read not recorded")
	}
	if r.PSuccess != 0 || r.PSuccessGivenNonTardy != 0 {
		t.Fatalf("psuccess = %v, want 0 for a stale commit", r.PSuccess)
	}
}

func TestStaleAbort(t *testing.T) {
	h := newHarness(TF, func(p *model.Params) { p.OnStale = model.StaleAbort })
	txn := h.txn(8, 1, 0.1, 1.0, 7)
	r := h.run(10)
	if txn.State != model.TxnAbortedStale {
		t.Fatalf("state = %v, want aborted-stale", txn.State)
	}
	if r.TxnsAbortedStale != 1 {
		t.Fatalf("aborted-stale count = %d", r.TxnsAbortedStale)
	}
	// Aborted after the first lookup: CPU spent = lookup only.
	if math.Abs(txn.FinishTime-(8+lookupSec)) > 1e-9 {
		t.Fatalf("aborted at %v", txn.FinishTime)
	}
}

func TestODRefreshesFromQueue(t *testing.T) {
	h := newHarness(OD, nil)
	// Keep the CPU busy so the update is queued, not installed.
	h.txn(7.4, 1, 0.2, 2.0)
	h.update(7.5, 7, 7.45)
	reader := h.txn(7.55, 1, 0.1, 2.0, 7)
	r := h.run(10)
	if reader.State != model.TxnCommittedState {
		t.Fatalf("reader state = %v", reader.State)
	}
	if reader.ReadStale {
		t.Fatal("OD should have refreshed the object before the read")
	}
	if r.UpdatesInstalled != 1 {
		t.Fatalf("installed = %d, want the in-line apply", r.UpdatesInstalled)
	}
	if got := h.trk.GenTime(7); got != 7.45 {
		t.Fatalf("generation = %v, want 7.45", got)
	}
}

func TestODFallsBackToStaleWhenQueueEmpty(t *testing.T) {
	h := newHarness(OD, nil)
	reader := h.txn(8, 1, 0.1, 1.0, 7)
	h.run(10)
	if !reader.ReadStale {
		t.Fatal("nothing to refresh from: read should be stale")
	}
	if reader.State != model.TxnCommittedState {
		t.Fatalf("state = %v", reader.State)
	}
}

func TestODAbortOnlyWhenRefreshImpossible(t *testing.T) {
	h := newHarness(OD, func(p *model.Params) { p.OnStale = model.StaleAbort })
	h.txn(7.4, 1, 0.2, 2.0)
	h.update(7.5, 7, 7.45)
	refreshable := h.txn(7.55, 1, 0.1, 2.0, 7)
	hopeless := h.txn(8.5, 1, 0.1, 2.0, 8) // object 8 has no queued update
	h.run(10)
	if refreshable.State != model.TxnCommittedState {
		t.Fatalf("refreshable txn state = %v", refreshable.State)
	}
	if hopeless.State != model.TxnAbortedStale {
		t.Fatalf("hopeless txn state = %v", hopeless.State)
	}
}

func TestODSupersededUpdatesDiscarded(t *testing.T) {
	h := newHarness(OD, nil)
	h.txn(7.4, 1, 0.3, 2.0) // busy [7.4, 7.7]
	h.update(7.5, 7, 7.41)
	h.update(7.55, 7, 7.52)
	// The reader arrives while the CPU is still busy, so it runs at
	// 7.7 with both updates still queued.
	reader := h.txn(7.65, 1, 0.1, 2.0, 7)
	r := h.run(10)
	if reader.ReadStale {
		t.Fatal("reader should see fresh data")
	}
	if got := h.trk.GenTime(7); got != 7.52 {
		t.Fatalf("generation = %v, want the newest 7.52", got)
	}
	// Exactly one in-line install; the superseded update discarded.
	if r.UpdatesInstalled != 1 || r.UpdatesSkippedUnworthy != 1 {
		t.Fatalf("installed=%d skipped=%d", r.UpdatesInstalled, r.UpdatesSkippedUnworthy)
	}
}

func TestOSQueueOverflowDrops(t *testing.T) {
	h := newHarness(TF, func(p *model.Params) { p.OSMax = 2 })
	h.txn(0, 1, 0.5, 2.0) // busy: updates pile up in the OS queue
	for i := 0; i < 5; i++ {
		h.update(0.1+float64(i)*0.01, model.ObjectID(i), 0.05)
	}
	r := h.run(1)
	if r.UpdatesOSDropped != 3 {
		t.Fatalf("OS drops = %d, want 3", r.UpdatesOSDropped)
	}
}

func TestUpdateQueueOverflowEvicts(t *testing.T) {
	h := newHarness(TF, func(p *model.Params) {
		p.UQMax = 3
		p.Staleness = model.UnappliedUpdate // no MA expiry interference
	})
	// Back-to-back transactions keep the CPU busy so installs never
	// run, while receives (at dispatch points) fill the update queue.
	h.txn(0, 1, 0.1, 2.0)
	h.txn(0.05, 1, 0.1, 2.0)
	for i := 0; i < 6; i++ {
		h.update(0.01+float64(i)*0.01, model.ObjectID(i), float64(i)*0.01)
	}
	r := h.run(0.205) // stop before the queue drains
	if r.UpdatesOverflowDropped == 0 {
		t.Fatal("expected overflow evictions from the bounded update queue")
	}
}

func TestMAExpiryDiscardsQueuedUpdates(t *testing.T) {
	h := newHarness(TF, nil)
	// Update with an already old generation: expires at gen+7 = 7.05.
	h.txn(0, 1, 0.1, 2.0) // busy so the update is queued at dispatch
	h.update(0.05, 7, 0.05)
	// Keep the system busy past the expiry time with a long txn.
	h.txn(0.09, 1, 7.2, 8.0)
	r := h.run(8)
	if r.UpdatesExpired != 1 {
		t.Fatalf("expired = %d, want 1", r.UpdatesExpired)
	}
	if r.UpdatesInstalled != 0 {
		t.Fatalf("installed = %d, want 0", r.UpdatesInstalled)
	}
}

func TestLIFOInstallsNewestFirst(t *testing.T) {
	mk := func(order model.QueueOrder) metrics.Result {
		h := newHarness(TF, func(p *model.Params) { p.Order = order })
		h.txn(0, 1, 0.2, 2.0) // busy while three updates queue up
		h.update(0.05, 7, 0.01)
		h.update(0.06, 7, 0.02)
		h.update(0.07, 7, 0.03)
		return h.run(1)
	}
	fifo := mk(model.FIFO)
	// FIFO: ascending generations, all worthy.
	if fifo.UpdatesInstalled != 3 || fifo.UpdatesSkippedUnworthy != 0 {
		t.Fatalf("FIFO installed=%d skipped=%d, want 3/0",
			fifo.UpdatesInstalled, fifo.UpdatesSkippedUnworthy)
	}
	lifo := mk(model.LIFO)
	// LIFO: newest first, the two older ones become unworthy.
	if lifo.UpdatesInstalled != 1 || lifo.UpdatesSkippedUnworthy != 2 {
		t.Fatalf("LIFO installed=%d skipped=%d, want 1/2",
			lifo.UpdatesInstalled, lifo.UpdatesSkippedUnworthy)
	}
}

func TestPViewDelaysReads(t *testing.T) {
	h := newHarness(TF, func(p *model.Params) {
		p.PView = 0.5
		p.OnStale = model.StaleAbort
	})
	txn := h.txn(8, 1, 0.2, 1.0, 7) // object 7 stale
	h.run(10)
	if txn.State != model.TxnAbortedStale {
		t.Fatalf("state = %v", txn.State)
	}
	// Half the computation runs before the fatal read.
	want := 8 + 0.1 + lookupSec
	if math.Abs(txn.FinishTime-want) > 1e-9 {
		t.Fatalf("aborted at %v, want %v", txn.FinishTime, want)
	}
}

func TestZeroReadTransaction(t *testing.T) {
	h := newHarness(OD, nil)
	txn := h.txn(0, 1, 0.1, 1.0) // empty read set
	h.run(1)
	if txn.State != model.TxnCommittedState || txn.ReadStale {
		t.Fatalf("state=%v stale=%v", txn.State, txn.ReadStale)
	}
}

func TestTxnPreemptionExtension(t *testing.T) {
	h := newHarness(TF, func(p *model.Params) { p.TxnPreemption = true })
	lo := h.txn(0, 1, 0.2, 2.0)
	hi := h.txn(0.05, 10, 0.1, 2.0)
	h.run(1)
	if !(hi.FinishTime < lo.FinishTime) {
		t.Fatalf("preemption should let the high-value txn finish first: hi=%v lo=%v",
			hi.FinishTime, lo.FinishTime)
	}
	// The displaced transaction still completes.
	if lo.State != model.TxnCommittedState {
		t.Fatalf("displaced txn state = %v", lo.State)
	}
	want := 0.05 + 0.1
	if math.Abs(hi.FinishTime-want) > 1e-9 {
		t.Fatalf("hi finished at %v, want %v", hi.FinishTime, want)
	}
}

func TestContextSwitchCost(t *testing.T) {
	h := newHarness(UF, func(p *model.Params) { p.XSwitch = 50000 }) // 1 ms
	txn := h.txn(0, 1, 0.1, 1.0)
	h.update(0.05, 7, 0.04)
	h.run(1)
	// Preemption charges 2 * 1 ms on top of the install.
	want := 0.1 + installSec + 2*0.001
	if math.Abs(txn.FinishTime-want) > 1e-9 {
		t.Fatalf("commit at %v, want %v", txn.FinishTime, want)
	}
}

func TestQueueCostCharged(t *testing.T) {
	h := newHarness(TF, func(p *model.Params) { p.XQueue = 1e6 }) // huge, visible
	h.txn(0, 1, 0.1, 2.0)
	h.update(0.05, 7, 0.04)
	h.update(0.06, 8, 0.05)
	r := h.run(5)
	// Receive of 2 updates costs ln(1)+ln(2) = ln 2 at 1e6 instr:
	// ~0.0139s, charged to updates.
	if r.RhoUpdate*5 < 0.01 {
		t.Fatalf("queue cost not charged: update busy = %v s", r.RhoUpdate*5)
	}
}

func TestScanCostLengthensODTransaction(t *testing.T) {
	mkDur := func(xscan float64) float64 {
		h := newHarness(OD, func(p *model.Params) {
			p.XScan = xscan
			p.Staleness = model.UnappliedUpdate // scan on every read
		})
		h.txn(0, 1, 0.3, 2.0) // busy so updates queue
		for i := 0; i < 10; i++ {
			h.update(0.01+float64(i)*0.001, model.ObjectID(100+i), 0.005)
		}
		// Arrives while busy: runs at 0.3 with the queue intact.
		reader := h.txn(0.29, 1, 0.1, 2.0, 7)
		h.run(5)
		return reader.FinishTime - 0.3
	}
	base := mkDur(0)
	costly := mkDur(50000) // 1 ms per queued update scanned
	if costly <= base {
		t.Fatalf("scan cost should lengthen the transaction: %v vs %v", costly, base)
	}
}

func TestFCReservesUpdateShare(t *testing.T) {
	// Under transaction overload TF starves updates; FC keeps
	// installing at its reserved share.
	run := func(pol Policy) metrics.Result {
		p := model.DefaultParams()
		p.TxnRate = 20
		p.UpdateCPUFraction = 0.2
		return MustRun(Config{Params: p, Policy: pol, Seed: 3, Duration: 50})
	}
	tf := run(TF)
	fc := run(FC)
	if fc.RhoUpdate < 3*tf.RhoUpdate {
		t.Fatalf("FC rho_u = %v should far exceed TF rho_u = %v under overload",
			fc.RhoUpdate, tf.RhoUpdate)
	}
	if fc.RhoUpdate < 0.15 || fc.RhoUpdate > 0.25 {
		t.Fatalf("FC rho_u = %v, want near the 0.2 reservation", fc.RhoUpdate)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	p := model.DefaultParams()
	p.IPS = -1
	if _, err := Run(Config{Params: p, Policy: TF, Duration: 1}); err == nil {
		t.Fatal("Run accepted invalid params")
	}
	p = model.DefaultParams()
	if _, err := Run(Config{Params: p, Policy: TF, Duration: 0}); err == nil {
		t.Fatal("Run accepted zero duration")
	}
}

func TestMustRunPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun should panic on invalid config")
		}
	}()
	p := model.DefaultParams()
	MustRun(Config{Params: p, Policy: TF, Duration: -1})
}

func TestRunDeterministic(t *testing.T) {
	p := model.DefaultParams()
	cfg := Config{Params: p, Policy: OD, Seed: 77, Duration: 30}
	a := MustRun(cfg)
	b := MustRun(cfg)
	if a != b {
		t.Fatalf("equal seeds produced different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 78
	c := MustRun(cfg)
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}
