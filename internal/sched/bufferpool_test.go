package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestBufferPoolHitMiss(t *testing.T) {
	bp := newBufferPool(2)
	if bp.access(1) {
		t.Fatal("first access should miss")
	}
	if !bp.access(1) {
		t.Fatal("second access should hit")
	}
	bp.access(2)
	bp.access(3) // evicts LRU = 1
	if bp.access(1) {
		t.Fatal("evicted page should miss")
	}
	if bp.len() != 2 {
		t.Fatalf("len = %d, want capacity 2", bp.len())
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	bp := newBufferPool(3)
	bp.access(1)
	bp.access(2)
	bp.access(3)
	bp.access(1) // 1 becomes MRU; LRU is 2
	bp.access(4) // evicts 2
	if !bp.access(1) || !bp.access(3) || !bp.access(4) {
		t.Fatal("resident pages should hit")
	}
	if bp.access(2) {
		t.Fatal("page 2 should have been the LRU victim")
	}
}

func TestBufferPoolHitRatio(t *testing.T) {
	bp := newBufferPool(1)
	if bp.hitRatio() != 0 {
		t.Fatal("empty pool hit ratio should be 0")
	}
	bp.access(1) // miss
	bp.access(1) // hit
	bp.access(1) // hit
	if got := bp.hitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio = %v, want 2/3", got)
	}
}

func TestBufferPoolZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity should panic")
		}
	}()
	newBufferPool(0)
}

func TestQuickBufferPoolNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64, capRaw, nOps uint8) bool {
		capacity := int(capRaw)%16 + 1
		bp := newBufferPool(capacity)
		r := rand.New(rand.NewSource(seed))
		resident := map[model.ObjectID]bool{}
		for i := 0; i < int(nOps)*4; i++ {
			id := model.ObjectID(r.Intn(32))
			hit := bp.access(id)
			if hit != resident[id] {
				return false // hit/miss disagrees with shadow model
			}
			resident[id] = true
			if bp.len() > capacity {
				return false
			}
			// Rebuild the shadow residency set from the pool's own
			// table after possible eviction: track by size only.
			if len(resident) > capacity {
				// One page was evicted; find which by probing is
				// overkill — just resync the shadow to the pool.
				resident = map[model.ObjectID]bool{}
				for k := range bp.table {
					resident[k] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskResidentRunBehaviour(t *testing.T) {
	base := model.DefaultParams()
	base.DiskResident = true
	base.IOSeconds = 0.01
	base.UpdateRate = 40
	base.TxnRate = 2
	// A small object population so compulsory (cold) misses do not
	// dominate the short horizon.
	base.NLow, base.NHigh = 100, 100

	run := func(pages int) (hitRatio, pmd float64) {
		p := base
		p.BufferPoolPages = pages
		r := MustRun(Config{Params: p, Policy: TF, Seed: 83, Duration: 60})
		if r.PageHits+r.PageMisses == 0 {
			t.Fatal("no buffer pool accesses recorded")
		}
		return r.BufferHitRatio, r.PMissedDeadline
	}

	smallHit, smallPMD := run(20)
	bigHit, bigPMD := run(250)
	if bigHit <= smallHit {
		t.Fatalf("hit ratio should grow with pool size: %v vs %v", bigHit, smallHit)
	}
	// With every object resident (250 pages > 200 objects) only the
	// cold misses remain.
	if bigHit < 0.9 {
		t.Fatalf("full-size pool hit ratio = %v, want > 0.9", bigHit)
	}
	if bigPMD > smallPMD {
		t.Fatalf("more cache should not miss more deadlines: %v vs %v", bigPMD, smallPMD)
	}
}

func TestMainMemoryRunHasNoPageAccesses(t *testing.T) {
	p := model.DefaultParams()
	r := MustRun(Config{Params: p, Policy: TF, Seed: 1, Duration: 10})
	if r.PageHits != 0 || r.PageMisses != 0 || r.BufferHitRatio != 0 {
		t.Fatalf("baseline should not touch the buffer pool: %+v", r)
	}
}
