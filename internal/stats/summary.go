package stats

import (
	"math"
	"sort"
)

// Summary accumulates event-weighted observations (one weight per
// observation) and reports mean, variance and extremes in a single
// pass. The zero value is ready to use.
type Summary struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
	s.sum2 += v * v
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean, or zero when empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance returns the unbiased sample variance, or zero for fewer
// than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.sum2 - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 { // guard against floating point cancellation
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or zero when empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or zero when empty.
func (s *Summary) Max() float64 { return s.max }

// TimeWeighted integrates a piecewise-constant signal over simulated
// time: Set records the signal's new level at a time, and Average
// reports the time-weighted mean over [start, end]. It is the
// accumulator behind the paper's fold metric (the average fraction of
// stale objects).
type TimeWeighted struct {
	started  bool
	start    float64
	lastT    float64
	lastV    float64
	integral float64
}

// Start begins integration at time t with initial level v. Calling
// Start resets any prior state.
func (w *TimeWeighted) Start(t, v float64) {
	*w = TimeWeighted{started: true, start: t, lastT: t, lastV: v}
}

// Set records that the signal changed to level v at time t. Times must
// be non-decreasing; out-of-order samples are ignored.
func (w *TimeWeighted) Set(t, v float64) {
	if !w.started {
		w.Start(t, v)
		return
	}
	if t < w.lastT {
		return
	}
	w.integral += w.lastV * (t - w.lastT)
	w.lastT = t
	w.lastV = v
}

// Integral returns the integral of the signal from the start time to t.
func (w *TimeWeighted) Integral(t float64) float64 {
	if !w.started || t <= w.lastT {
		return w.integral
	}
	return w.integral + w.lastV*(t-w.lastT)
}

// Average returns the time-weighted mean of the signal from the start
// time to t, or zero if no time has elapsed.
func (w *TimeWeighted) Average(t float64) float64 {
	if !w.started {
		return 0
	}
	dur := t - w.start
	if dur <= 0 {
		return 0
	}
	return w.Integral(t) / dur
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation. The input slice is not modified. An empty input
// returns zero.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanStd returns the mean and sample standard deviation of values.
func MeanStd(values []float64) (mean, std float64) {
	var s Summary
	for _, v := range values {
		s.Add(v)
	}
	return s.Mean(), s.StdDev()
}
