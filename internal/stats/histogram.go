package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram over a closed range. Values
// below the range land in the first bucket, above it in the last, so
// every observation is counted. The zero value is not usable; build
// with NewHistogram.
type Histogram struct {
	lo, hi float64
	counts []uint64
	n      uint64
}

// NewHistogram returns a histogram of `buckets` equal-width buckets
// over [lo, hi). It panics on a non-positive bucket count or an empty
// range.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if !(hi > lo) {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]uint64, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := 0
	if !math.IsNaN(v) {
		pos := (v - h.lo) / (h.hi - h.lo) * float64(len(h.counts))
		idx = int(pos)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
	}
	h.counts[idx]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Count returns the count in bucket i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	width := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + float64(i)*width, h.lo + float64(i+1)*width
}

// Quantile approximates the q-quantile assuming a uniform distribution
// within buckets. It returns the range minimum when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return h.lo
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	acc := 0.0
	for i, c := range h.counts {
		next := acc + float64(c)
		if next >= target && c > 0 {
			lo, hi := h.BucketBounds(i)
			frac := 0.0
			if c > 0 {
				frac = (target - acc) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
		acc = next
	}
	return h.hi
}

// WriteASCII renders the histogram as an ASCII bar chart, one line per
// bucket, scaled so the fullest bucket spans width characters.
func (h *Histogram) WriteASCII(w io.Writer, width int) error {
	if width <= 0 {
		width = 40
	}
	var max uint64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.counts {
		lo, hi := h.BucketBounds(i)
		bar := 0
		if max > 0 {
			bar = int(float64(c) / float64(max) * float64(width))
		}
		if _, err := fmt.Fprintf(w, "[%8.4f, %8.4f) %8d %s\n",
			lo, hi, c, strings.Repeat("#", bar)); err != nil {
			return err
		}
	}
	return nil
}
