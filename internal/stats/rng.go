// Package stats provides the random-number machinery and summary
// statistics used by the simulation: seeded deterministic generators,
// the distributions of the paper's workload model (exponential
// inter-arrival times, normally distributed costs and values, uniform
// slacks), and accumulators for time-weighted and event-weighted
// averages.
//
// All generators are deterministic for a given seed so that every
// simulation run is exactly reproducible.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a seeded source of the distributions used by the workload and
// system models. It wraps a PCG generator from math/rand/v2; two RNGs
// created with the same seed pair produce identical streams.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator seeded with (seed1, seed2).
func NewRNG(seed1, seed2 uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed1, seed2))}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Exponential returns a draw from an exponential distribution with the
// given mean. A mean of zero returns zero.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.src.ExpFloat64() * mean
}

// Normal returns a draw from a normal distribution with the given mean
// and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// PositiveNormal returns a normal draw resampled until it is strictly
// positive. It is used for transaction values and computation times,
// which are modelled as normal but are meaningless when non-positive.
// If mean <= 0 the resampling could loop for a long time, so the value
// is clamped to a tiny positive epsilon after 64 attempts.
func (r *RNG) PositiveNormal(mean, stddev float64) float64 {
	for i := 0; i < 64; i++ {
		if v := r.Normal(mean, stddev); v > 0 {
			return v
		}
	}
	return math.SmallestNonzeroFloat64
}

// NonNegativeCount returns a normal draw rounded to the nearest
// integer and clamped at zero. It is used for the number of view
// objects read by a transaction (mean 2, stddev 1 in the baseline).
func (r *RNG) NonNegativeCount(mean, stddev float64) int {
	v := math.Round(r.Normal(mean, stddev))
	if v < 0 {
		return 0
	}
	return int(v)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.src.Float64() < p }

// Split derives an independent generator from this one. It is used to
// give each workload source (updates, transactions) its own stream so
// that changing one sweep parameter does not perturb the other source's
// draws.
func (r *RNG) Split() *RNG {
	return NewRNG(r.src.Uint64(), r.src.Uint64())
}
