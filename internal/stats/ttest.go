package stats

import "math"

// TTestResult is the outcome of a Welch two-sample t-test.
type TTestResult struct {
	// T is the test statistic.
	T float64
	// DF is the Welch–Satterthwaite degrees of freedom.
	DF float64
	// P is the two-sided p-value.
	P float64
	// MeanA, MeanB are the sample means.
	MeanA, MeanB float64
}

// WelchTTest compares the means of two independent samples without
// assuming equal variances. It is the right test for comparing two
// scheduling policies across replicated simulation runs. Samples with
// fewer than two observations, or two samples with zero variance,
// yield P = 1 when the means are equal and P = 0 when they differ
// (the outcome is deterministic).
func WelchTTest(a, b []float64) TTestResult {
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	res := TTestResult{MeanA: ma, MeanB: mb}
	na, nb := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 || (sa == 0 && sb == 0) {
		if ma == mb {
			res.P = 1
		} else {
			res.P = 0
			res.T = math.Inf(sign(ma - mb))
		}
		return res
	}
	va, vb := sa*sa/na, sb*sb/nb
	se := math.Sqrt(va + vb)
	res.T = (ma - mb) / se
	res.DF = (va + vb) * (va + vb) /
		(va*va/(na-1) + vb*vb/(nb-1))
	res.P = 2 * studentTailCDF(math.Abs(res.T), res.DF)
	return res
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTailCDF returns P(T > t) for Student's t distribution with
// df degrees of freedom, via the regularized incomplete beta function.
func studentTailCDF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) by the standard continued-fraction expansion (Numerical
// Recipes' betacf construction, reimplemented).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// The continued fraction converges fast only for
	// x < (a+1)/(a+b+2); use the symmetry relation otherwise.
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	// Lentz's algorithm for the continued fraction.
	const eps = 1e-14
	const tiny = 1e-300
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		var numerator float64
		m := i / 2
		fm := float64(m)
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		default:
			numerator = -(a + fm) * (a + b + fm) * x / ((a + 2*fm) * (a + 2*fm + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		f *= c * d
		if math.Abs(1-c*d) < eps {
			break
		}
	}
	v := front * (f - 1)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
