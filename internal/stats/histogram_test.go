package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1.5, 2.5, 2.6, 9.9} {
		h.Add(v)
	}
	if h.N() != 5 || h.Buckets() != 5 {
		t.Fatalf("N=%d buckets=%d", h.N(), h.Buckets())
	}
	wantCounts := []uint64{2, 2, 0, 0, 1}
	for i, want := range wantCounts {
		if got := h.Count(i); got != want {
			t.Fatalf("bucket %d count = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-5)         // below range: first bucket
	h.Add(99)         // above range: last bucket
	h.Add(1.0)        // exactly hi: last bucket
	h.Add(math.NaN()) // pathological: first bucket, still counted
	if h.Count(0) != 2 || h.Count(1) != 2 {
		t.Fatalf("clamped counts = %d/%d", h.Count(0), h.Count(1))
	}
	if h.N() != 4 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	lo, hi := h.BucketBounds(2)
	if lo != 4 || hi != 6 {
		t.Fatalf("bounds = [%v, %v)", lo, hi)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := h.Quantile(q)
		want := q * 100
		if math.Abs(got-want) > 2 {
			t.Fatalf("Quantile(%v) = %v, want about %v", q, got, want)
		}
	}
	if got := h.Quantile(-1); got > h.Quantile(0.1) {
		t.Fatal("clamped low quantile out of order")
	}
	if got := h.Quantile(2); got < h.Quantile(0.9) {
		t.Fatal("clamped high quantile out of order")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(5, 10, 3)
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("empty quantile = %v, want range minimum", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
		func() { NewHistogram(2, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramASCII(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(0.6)
	h.Add(1.5)
	var buf bytes.Buffer
	if err := h.WriteASCII(&buf, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("ASCII output has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Fatalf("fullest bucket should span the width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Fatalf("half-full bucket bar wrong: %q", lines[1])
	}
}

func TestQuickHistogramConservation(t *testing.T) {
	f := func(values []float64) bool {
		h := NewHistogram(-100, 100, 17)
		for _, v := range values {
			h.Add(v)
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.Count(i)
		}
		return sum == uint64(len(values)) && h.N() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
