package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(1, 2)
	b := NewRNG(1, 2)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d differs: %v vs %v", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1, 2)
	b := NewRNG(3, 4)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(7, 7)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(0.1, 1.0)
		if v < 0.1 || v >= 1.0 {
			t.Fatalf("uniform draw %v outside [0.1, 1.0)", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := NewRNG(7, 8)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Uniform(0.1, 1.0))
	}
	if got, want := s.Mean(), 0.55; math.Abs(got-want) > 0.01 {
		t.Fatalf("uniform mean = %v, want about %v", got, want)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := NewRNG(11, 13)
	const mean = 0.1
	var s Summary
	for i := 0; i < 200000; i++ {
		v := r.Exponential(mean)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		s.Add(v)
	}
	if math.Abs(s.Mean()-mean) > 0.005 {
		t.Fatalf("exponential mean = %v, want about %v", s.Mean(), mean)
	}
	// Exponential stddev equals its mean.
	if math.Abs(s.StdDev()-mean) > 0.01 {
		t.Fatalf("exponential stddev = %v, want about %v", s.StdDev(), mean)
	}
}

func TestExponentialZeroMean(t *testing.T) {
	r := NewRNG(1, 1)
	if v := r.Exponential(0); v != 0 {
		t.Fatalf("Exponential(0) = %v, want 0", v)
	}
	if v := r.Exponential(-1); v != 0 {
		t.Fatalf("Exponential(-1) = %v, want 0", v)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5, 9)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Normal(2.0, 0.5))
	}
	if math.Abs(s.Mean()-2.0) > 0.01 {
		t.Fatalf("normal mean = %v, want about 2.0", s.Mean())
	}
	if math.Abs(s.StdDev()-0.5) > 0.01 {
		t.Fatalf("normal stddev = %v, want about 0.5", s.StdDev())
	}
}

func TestPositiveNormalAlwaysPositive(t *testing.T) {
	r := NewRNG(3, 3)
	for i := 0; i < 50000; i++ {
		if v := r.PositiveNormal(0.12, 0.5); v <= 0 {
			t.Fatalf("PositiveNormal returned %v", v)
		}
	}
	// Pathological parameters must still terminate and stay positive.
	if v := r.PositiveNormal(-100, 0.0001); v <= 0 {
		t.Fatalf("PositiveNormal with hopeless params returned %v", v)
	}
}

func TestNonNegativeCount(t *testing.T) {
	r := NewRNG(21, 22)
	var s Summary
	for i := 0; i < 100000; i++ {
		c := r.NonNegativeCount(2.0, 1.0)
		if c < 0 {
			t.Fatalf("negative count %d", c)
		}
		s.Add(float64(c))
	}
	// Clamping at zero slightly raises the mean above 2.0.
	if s.Mean() < 1.9 || s.Mean() > 2.2 {
		t.Fatalf("count mean = %v, want about 2.0", s.Mean())
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(2, 4)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) hit rate = %v", p)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := NewRNG(1, 2)
	child := a.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == child.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := NewRNG(9, 9).Split()
	b := NewRNG(9, 9).Split()
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("split streams from equal seeds diverged at %d", i)
		}
	}
}

func TestIntNRange(t *testing.T) {
	r := NewRNG(14, 15)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.IntN(10)
		if v < 0 || v >= 10 {
			t.Fatalf("IntN(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("IntN(10) produced only %d distinct values", len(seen))
	}
}

func TestQuickUniformBounds(t *testing.T) {
	r := NewRNG(77, 78)
	f := func(lo float64, width uint8) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.Abs(lo) > 1e12 {
			return true
		}
		hi := lo + float64(width) + 1
		v := r.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
