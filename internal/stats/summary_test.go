package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("zero Summary should report zeros")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Sum() != 10 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if s.Mean() != 2.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if want := 5.0 / 3.0; math.Abs(s.Variance()-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), want)
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummarySingleValueVariance(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatalf("single observation variance = %v", s.Variance())
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if s.Mean() != 0 || s.Min() != -5 || s.Max() != 5 {
		t.Fatalf("mean/min/max = %v/%v/%v", s.Mean(), s.Min(), s.Max())
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		clean := raw[:0]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e15 {
				continue
			}
			clean = append(clean, v)
			s.Add(v)
		}
		if len(clean) == 0 {
			return s.N() == 0
		}
		if s.Variance() < 0 {
			return false
		}
		return s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var w TimeWeighted
	w.Start(0, 0.5)
	if got := w.Average(10); got != 0.5 {
		t.Fatalf("constant signal average = %v", got)
	}
}

func TestTimeWeightedSteps(t *testing.T) {
	var w TimeWeighted
	w.Start(0, 0)
	w.Set(4, 1) // 0 for [0,4), 1 for [4,10)
	if got, want := w.Average(10), 0.6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("step average = %v, want %v", got, want)
	}
	if got, want := w.Integral(10), 6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("integral = %v, want %v", got, want)
	}
}

func TestTimeWeightedRepeatedSet(t *testing.T) {
	var w TimeWeighted
	w.Start(0, 2)
	w.Set(1, 2)
	w.Set(2, 2)
	w.Set(3, 0)
	if got, want := w.Average(4), 1.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("average = %v, want %v", got, want)
	}
}

func TestTimeWeightedOutOfOrderIgnored(t *testing.T) {
	var w TimeWeighted
	w.Start(0, 1)
	w.Set(5, 0)
	w.Set(3, 100) // ignored
	if got, want := w.Average(10), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("average = %v, want %v", got, want)
	}
}

func TestTimeWeightedZeroDuration(t *testing.T) {
	var w TimeWeighted
	w.Start(5, 1)
	if got := w.Average(5); got != 0 {
		t.Fatalf("zero-duration average = %v", got)
	}
	var unstarted TimeWeighted
	if got := unstarted.Average(10); got != 0 {
		t.Fatalf("unstarted average = %v", got)
	}
}

func TestTimeWeightedSetBeforeStart(t *testing.T) {
	var w TimeWeighted
	w.Set(2, 3) // acts as Start
	if got := w.Average(4); got != 3 {
		t.Fatalf("average = %v, want 3", got)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v", got)
	}
	// Input must not be mutated.
	if vals[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	if want := math.Sqrt(32.0 / 7.0); math.Abs(std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", std, want)
	}
}

func TestQuickTimeWeightedBounded(t *testing.T) {
	// The average of a 0/1 signal must stay within [0,1].
	f := func(flips []bool) bool {
		var w TimeWeighted
		w.Start(0, 0)
		tm := 0.0
		for i, b := range flips {
			tm = float64(i + 1)
			v := 0.0
			if b {
				v = 1.0
			}
			w.Set(tm, v)
		}
		avg := w.Average(tm + 1)
		return avg >= 0 && avg <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
