package stats

import (
	"math"
	"testing"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		// I_x(1,1) = x (uniform distribution CDF).
		{1, 1, 0.3, 0.3},
		{1, 1, 0.8, 0.8},
		// I_x(2,2) = x^2(3-2x).
		{2, 2, 0.5, 0.5},
		{2, 2, 0.25, 0.25 * 0.25 * (3 - 0.5)},
		// I_x(0.5,0.5) = (2/pi) asin(sqrt(x)).
		{0.5, 0.5, 0.5, 0.5},
		{0.5, 0.5, 0.25, 2 / math.Pi * math.Asin(0.5)},
		// Boundaries.
		{3, 4, 0, 0},
		{3, 4, 1, 1},
	}
	for _, c := range cases {
		got := regIncBeta(c.a, c.b, c.x)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestStudentTailKnownValues(t *testing.T) {
	// Classic t-table values: P(T > t) for given df.
	cases := []struct {
		t, df, want float64
	}{
		{0, 10, 0.5},
		{1.812, 10, 0.05},  // t_{0.95, 10}
		{2.228, 10, 0.025}, // t_{0.975, 10}
		{6.314, 1, 0.05},   // t_{0.95, 1}
		{1.645, 1e6, 0.05}, // converges to the normal quantile
	}
	for _, c := range cases {
		got := studentTailCDF(c.t, c.df)
		if math.Abs(got-c.want) > 2e-3 {
			t.Errorf("P(T>%v; df=%v) = %v, want about %v", c.t, c.df, got, c.want)
		}
	}
	if got := studentTailCDF(math.Inf(1), 5); got != 0 {
		t.Errorf("infinite t tail = %v", got)
	}
}

func TestWelchTTestSeparatedSamples(t *testing.T) {
	a := []float64{10.1, 10.2, 9.9, 10.0, 10.1}
	b := []float64{12.0, 12.2, 11.9, 12.1, 12.0}
	res := WelchTTest(a, b)
	if res.P > 1e-6 {
		t.Fatalf("clearly separated samples: p = %v", res.P)
	}
	if res.T >= 0 {
		t.Fatalf("mean(a) < mean(b) should give negative t, got %v", res.T)
	}
	if res.MeanA >= res.MeanB {
		t.Fatal("means wrong")
	}
}

func TestWelchTTestIdenticalDistributions(t *testing.T) {
	r := NewRNG(5, 5)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = r.Normal(5, 1)
		b[i] = r.Normal(5, 1)
	}
	res := WelchTTest(a, b)
	if res.P < 0.001 {
		t.Fatalf("same-distribution samples flagged significant: p = %v", res.P)
	}
	if res.DF < 20 || res.DF > 60 {
		t.Fatalf("df = %v, want near 58", res.DF)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	// Zero-variance equal samples: deterministic equality.
	res := WelchTTest([]float64{3, 3, 3}, []float64{3, 3})
	if res.P != 1 {
		t.Fatalf("equal constants p = %v, want 1", res.P)
	}
	// Zero-variance different samples: deterministic difference.
	res = WelchTTest([]float64{3, 3}, []float64{4, 4})
	if res.P != 0 {
		t.Fatalf("different constants p = %v, want 0", res.P)
	}
	// Single observations.
	res = WelchTTest([]float64{1}, []float64{2})
	if res.P != 0 {
		t.Fatalf("single different p = %v", res.P)
	}
	res = WelchTTest([]float64{2}, []float64{2})
	if res.P != 1 {
		t.Fatalf("single equal p = %v", res.P)
	}
}

func TestWelchTTestKnownExample(t *testing.T) {
	// A worked example (unequal variances, unequal sizes).
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9}
	res := WelchTTest(a, b)
	// Reference (computed independently): t = -2.83526,
	// df = 27.7136, p = 0.0084527.
	if math.Abs(res.T+2.83526) > 1e-4 {
		t.Fatalf("t = %v, want -2.83526", res.T)
	}
	if math.Abs(res.DF-27.7136) > 1e-3 {
		t.Fatalf("df = %v, want 27.7136", res.DF)
	}
	if math.Abs(res.P-0.0084527) > 1e-5 {
		t.Fatalf("p = %v, want 0.0084527", res.P)
	}
}
