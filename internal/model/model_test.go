package model

import (
	"strings"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("baseline parameters invalid: %v", err)
	}
}

func TestDefaultParamsMatchPaperTables(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"UpdateRate", p.UpdateRate, 400},
		{"PUpdateLow", p.PUpdateLow, 0.5},
		{"MeanUpdateAge", p.MeanUpdateAge, 0.1},
		{"NLow", float64(p.NLow), 500},
		{"NHigh", float64(p.NHigh), 500},
		{"TxnRate", p.TxnRate, 10},
		{"PTxnLow", p.PTxnLow, 0.5},
		{"SlackMin", p.SlackMin, 0.1},
		{"SlackMax", p.SlackMax, 1.0},
		{"ValueLowMean", p.ValueLowMean, 1.0},
		{"ValueHighMean", p.ValueHighMean, 2.0},
		{"ValueLowStd", p.ValueLowStd, 0.5},
		{"ValueHighStd", p.ValueHighStd, 0.5},
		{"ReadsMean", p.ReadsMean, 2.0},
		{"ReadsStd", p.ReadsStd, 1.0},
		{"MaxAgeDelta", p.MaxAgeDelta, 7.0},
		{"CompMean", p.CompMean, 0.12},
		{"CompStd", p.CompStd, 0.01},
		{"PView", p.PView, 0.0},
		{"IPS", p.IPS, 50e6},
		{"XLookup", p.XLookup, 4000},
		{"XUpdate", p.XUpdate, 20000},
		{"XSwitch", p.XSwitch, 0},
		{"XQueue", p.XQueue, 0},
		{"XScan", p.XScan, 0},
		{"OSMax", float64(p.OSMax), 4000},
		{"UQMax", float64(p.UQMax), 5600},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v (paper Tables 1-3)", c.name, c.got, c.want)
		}
	}
	if !p.FeasibleDeadline {
		t.Error("FeasibleDeadline should default to true")
	}
	if p.TxnPreemption {
		t.Error("TxnPreemption should default to false")
	}
	if p.Order != FIFO {
		t.Error("Order should default to FIFO")
	}
	if p.Staleness != MaxAge {
		t.Error("Staleness should default to MA")
	}
	if p.OnStale != StaleIgnore {
		t.Error("OnStale should default to ignore")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		want   string
	}{
		{"negative update rate", func(p *Params) { p.UpdateRate = -1 }, "UpdateRate"},
		{"pul out of range", func(p *Params) { p.PUpdateLow = 1.5 }, "PUpdateLow"},
		{"no objects", func(p *Params) { p.NLow, p.NHigh = 0, 0 }, "NLow+NHigh"},
		{"slack inverted", func(p *Params) { p.SlackMax = 0.01 }, "SlackMax"},
		{"zero delta", func(p *Params) { p.MaxAgeDelta = 0 }, "MaxAgeDelta"},
		{"zero comp", func(p *Params) { p.CompMean = 0 }, "CompMean"},
		{"zero ips", func(p *Params) { p.IPS = 0 }, "IPS"},
		{"zero os queue", func(p *Params) { p.OSMax = 0 }, "OSMax"},
		{"zero update queue", func(p *Params) { p.UQMax = 0 }, "UQMax"},
		{"bad fraction", func(p *Params) { p.UpdateCPUFraction = 2 }, "UpdateCPUFraction"},
		{"negative warmup", func(p *Params) { p.MetricsWarmup = -1 }, "MetricsWarmup"},
		{"negative ptl", func(p *Params) { p.PTxnLow = -0.1 }, "PTxnLow"},
		{"negative xscan", func(p *Params) { p.XScan = -5 }, "XScan"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := DefaultParams()
			c.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid parameters")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateJoinsMultipleErrors(t *testing.T) {
	p := DefaultParams()
	p.UpdateRate = -1
	p.IPS = -1
	err := p.Validate()
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "UpdateRate") || !strings.Contains(err.Error(), "IPS") {
		t.Fatalf("joined error missing a cause: %v", err)
	}
}

func TestObjectClass(t *testing.T) {
	p := DefaultParams()
	if p.ObjectClass(0) != Low || p.ObjectClass(499) != Low {
		t.Error("IDs [0,500) should be low importance")
	}
	if p.ObjectClass(500) != High || p.ObjectClass(999) != High {
		t.Error("IDs [500,1000) should be high importance")
	}
	if p.NumObjects() != 1000 {
		t.Errorf("NumObjects = %d", p.NumObjects())
	}
}

func TestSecondsConversion(t *testing.T) {
	p := DefaultParams()
	// One update install: (4000+20000)/50e6 = 0.48 ms.
	if got, want := p.Seconds(p.InstallCost()), 0.00048; got != want {
		t.Fatalf("install seconds = %v, want %v", got, want)
	}
}

func TestUpdateAge(t *testing.T) {
	u := Update{GenTime: 5, ArrivalTime: 5.3}
	if got := u.Age(7.0); got != 2.0 {
		t.Fatalf("Age = %v, want 2", got)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Low.String(), "low"},
		{High.String(), "high"},
		{MaxAge.String(), "MA"},
		{UnappliedUpdate.String(), "UU"},
		{UnappliedUpdateStrict.String(), "UU-strict"},
		{StaleIgnore.String(), "ignore"},
		{StaleAbort.String(), "abort"},
		{FIFO.String(), "FIFO"},
		{LIFO.String(), "LIFO"},
		{TxnPendingState.String(), "pending"},
		{TxnRunningState.String(), "running"},
		{TxnCommittedState.String(), "committed"},
		{TxnAbortedDeadline.String(), "aborted-deadline"},
		{TxnAbortedStale.String(), "aborted-stale"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
