// Package model defines the conceptual model of the paper (§3): the
// database objects, the updates flowing in from external sources, the
// value- and deadline-bearing transactions, and the full parameter set
// of Tables 1–3 with their baseline values.
package model

import (
	"errors"
	"fmt"
)

// Importance classifies a view object or a transaction. The paper
// partitions view data into a low-importance and a high-importance set;
// low-value transactions read low-importance data and high-value
// transactions read high-importance data (§3.2, Fig. 1).
type Importance int

const (
	// Low marks low-importance view data / low-value transactions.
	Low Importance = iota
	// High marks high-importance view data / high-value transactions.
	High
)

// String returns "low" or "high".
func (i Importance) String() string {
	if i == High {
		return "high"
	}
	return "low"
}

// ObjectID identifies a view object. IDs are dense: low-importance
// objects are [0, Nl) and high-importance objects are [Nl, Nl+Nh).
type ObjectID int32

// Update is one element of the external update stream. Each update
// carries a complete new value for exactly one view object (§2:
// complete updates to snapshot views).
type Update struct {
	// Seq is a unique arrival sequence number, used for stable
	// ordering of updates with identical generation times.
	Seq uint64
	// Object is the view object the update refreshes.
	Object ObjectID
	// Class is the importance of the target object.
	Class Importance
	// GenTime is the simulated time at which the external source
	// generated the value (the update's timestamp).
	GenTime float64
	// ArrivalTime is the simulated time at which the update arrived
	// at the database system; ArrivalTime - GenTime is the network
	// age of the update. The strip library's observability layer also
	// recovers nanosecond arrival stamps for queue-wait spans from
	// this axis (the float64 mantissa keeps sub-nanosecond precision
	// at realistic uptimes) rather than carrying a second field.
	ArrivalTime float64
	// Payload is the new value carried by the update. The simulator
	// does not model values and leaves it zero; the strip library
	// carries real data through the same queue structures.
	Payload float64
	// Aux is an opaque application payload carried through the queue
	// untouched (nil in the simulator; the strip library uses it for
	// partial-update field sets).
	Aux any
	// WallGen is the exact wall-clock generation time in Unix
	// nanoseconds (zero in the simulator). The strip library carries it
	// so installed generation timestamps survive replication without
	// the precision loss of the float-seconds GenTime axis.
	WallGen int64
	// Replicated marks an update fed by the replication subsystem; the
	// strip library uses it to account replica lag when the update is
	// installed or dropped.
	Replicated bool
}

// Age returns the update's age at time now, measured from generation.
func (u *Update) Age(now float64) float64 { return now - u.GenTime }

// TxnState tracks a transaction through its lifecycle.
type TxnState int

const (
	// TxnPendingState: arrived, waiting in the ready queue.
	TxnPendingState TxnState = iota
	// TxnRunningState: currently holding the CPU (or preempted with
	// saved progress).
	TxnRunningState
	// TxnCommittedState: finished before its deadline.
	TxnCommittedState
	// TxnAbortedDeadline: aborted because its firm deadline passed or
	// the feasible-deadline test failed.
	TxnAbortedDeadline
	// TxnAbortedStale: aborted because it read a stale object under
	// the abort-on-stale policy.
	TxnAbortedStale
)

// String returns a short human-readable state name.
func (s TxnState) String() string {
	switch s {
	case TxnPendingState:
		return "pending"
	case TxnRunningState:
		return "running"
	case TxnCommittedState:
		return "committed"
	case TxnAbortedDeadline:
		return "aborted-deadline"
	case TxnAbortedStale:
		return "aborted-stale"
	default:
		return fmt.Sprintf("TxnState(%d)", int(s))
	}
}

// Txn is one firm-deadline transaction (§3.4). Execution follows the
// paper's three-stage pattern: PView of the computation, then the view
// reads, then the remaining computation.
type Txn struct {
	// ID is a unique transaction identifier.
	ID uint64
	// Class is low or high value.
	Class Importance
	// Value is the benefit gained if the transaction commits before
	// its deadline; zero value is gained otherwise (firm deadline).
	Value float64
	// ArrivalTime is when the transaction entered the system.
	ArrivalTime float64
	// Deadline is the absolute firm deadline: arrival + execution
	// estimate + slack.
	Deadline float64
	// CompSeconds is the pure computation time in seconds (general
	// data access folded in, per §5.2).
	CompSeconds float64
	// ReadSet lists the view objects the transaction reads, drawn
	// uniformly (with replacement) from its class partition.
	ReadSet []ObjectID
	// PView is the fraction of CompSeconds executed before the view
	// reads.
	PView float64

	// State is the current lifecycle state.
	State TxnState
	// ReadStale records whether any view read observed a stale value.
	ReadStale bool
	// FinishTime is when the transaction committed or aborted.
	FinishTime float64
}

// StalenessCriterion selects how "stale" is defined (§2).
type StalenessCriterion int

const (
	// MaxAge (MA): a value is stale when now - generation time
	// exceeds the maximum age Delta.
	MaxAge StalenessCriterion = iota
	// UnappliedUpdate (UU): a value is stale while an update for the
	// object sits unapplied in the update queue.
	UnappliedUpdate
	// UnappliedUpdateStrict is an extension (§2 "variations"): a
	// value is stale while the newest *received* generation for the
	// object exceeds the installed generation, even if the pending
	// update was dropped from the queue.
	UnappliedUpdateStrict
	// CombinedMAUU is the §2 combination: an object is stale if it is
	// stale under either MA or UU.
	CombinedMAUU
)

// String names the criterion as in the paper.
func (c StalenessCriterion) String() string {
	switch c {
	case MaxAge:
		return "MA"
	case UnappliedUpdate:
		return "UU"
	case UnappliedUpdateStrict:
		return "UU-strict"
	case CombinedMAUU:
		return "MA+UU"
	default:
		return fmt.Sprintf("StalenessCriterion(%d)", int(c))
	}
}

// StaleAction selects what a transaction does upon reading stale data
// (§2).
type StaleAction int

const (
	// StaleIgnore completes the transaction normally; staleness is
	// only recorded in the metrics (§6.1).
	StaleIgnore StaleAction = iota
	// StaleAbort aborts the transaction on its first stale read
	// (§6.2). Under OD the abort happens only if the update queue
	// could not refresh the object.
	StaleAbort
)

// String names the action.
func (a StaleAction) String() string {
	if a == StaleAbort {
		return "abort"
	}
	return "ignore"
}

// QueueOrder selects the update-installation discipline for the update
// queue (§4.2). The queue is kept in generation order, so FIFO
// installs the oldest generation first and LIFO the newest.
type QueueOrder int

const (
	// FIFO installs the oldest-generation queued update first.
	FIFO QueueOrder = iota
	// LIFO installs the newest-generation queued update first.
	LIFO
)

// String returns "FIFO" or "LIFO".
func (o QueueOrder) String() string {
	if o == LIFO {
		return "LIFO"
	}
	return "FIFO"
}

// Params bundles every model parameter from Tables 1–3 plus the
// extension knobs documented in DESIGN.md. Construct it with
// DefaultParams and override fields before calling Validate.
type Params struct {
	// --- Table 1: data and updates ---

	// UpdateRate is the Poisson update arrival rate λu (1/s).
	UpdateRate float64
	// PUpdateLow is the probability an update targets the
	// low-importance partition (pul).
	PUpdateLow float64
	// MeanUpdateAge is the exponential mean network age of updates on
	// arrival (āupdate, seconds).
	MeanUpdateAge float64
	// NLow and NHigh are the partition sizes Nl and Nh.
	NLow, NHigh int

	// --- Table 2: transactions ---

	// TxnRate is the Poisson transaction arrival rate λt (1/s).
	TxnRate float64
	// PTxnLow is the probability a transaction is low value (ptl).
	PTxnLow float64
	// SlackMin and SlackMax bound the uniform slack (seconds).
	SlackMin, SlackMax float64
	// ValueLowMean, ValueHighMean are the normal value means (vl, vh).
	ValueLowMean, ValueHighMean float64
	// ValueLowStd, ValueHighStd are the value standard deviations.
	ValueLowStd, ValueHighStd float64
	// ReadsMean, ReadsStd parameterize the normal draw of the number
	// of view objects read (r̄, σr).
	ReadsMean, ReadsStd float64
	// MaxAgeDelta is the maximum data age Δ for the MA criterion
	// (seconds).
	MaxAgeDelta float64
	// CompMean, CompStd parameterize the normal computation time
	// (x̄, σx, seconds).
	CompMean, CompStd float64
	// PView is the fraction of computation done before view reads.
	PView float64

	// --- Table 3: system ---

	// IPS is the CPU speed in instructions per second.
	IPS float64
	// XLookup is the instruction cost to find a data object.
	XLookup float64
	// XUpdate is the instruction cost to update a data object.
	XUpdate float64
	// XSwitch is the instruction cost of one context switch.
	XSwitch float64
	// XQueue is the proportionality constant for queue insert/remove
	// (cost = XQueue·ln(n)).
	XQueue float64
	// XScan is the per-element cost of scanning the update queue.
	XScan float64
	// OSMax is the OS (kernel) queue capacity in updates.
	OSMax int
	// UQMax is the internal update queue capacity in updates.
	UQMax int
	// FeasibleDeadline aborts transactions that can no longer meet
	// their deadline at every scheduling point.
	FeasibleDeadline bool
	// TxnPreemption allows a newly arrived transaction with a higher
	// value density to preempt the running one (FALSE in the paper's
	// baseline).
	TxnPreemption bool
	// Order is the update-installation discipline (FIFO baseline).
	Order QueueOrder

	// --- Scenario selection ---

	// Staleness is the staleness criterion (MA baseline).
	Staleness StalenessCriterion
	// OnStale is what transactions do on a stale read.
	OnStale StaleAction

	// --- Extensions (DESIGN.md §6) ---

	// CoalesceQueue replaces the generation-ordered queue with the
	// paper's proposed hash-coalescing queue holding at most one (the
	// newest) update per object.
	CoalesceQueue bool
	// PartitionedQueues makes the idle-time update process drain
	// high-importance updates before low-importance ones (the §4.2
	// "future study" enhancement).
	PartitionedQueues bool
	// UpdateCPUFraction, for the FC policy, is the long-run CPU share
	// reserved for the update process.
	UpdateCPUFraction float64
	// MetricsWarmup excludes the first MetricsWarmup seconds from all
	// metrics to remove start-up transients (0 in the paper).
	MetricsWarmup float64
	// PeriodicPeriod, when positive, replaces the Poisson update
	// stream with the §2 periodic model: every view object is
	// refreshed once per period (random phases), as in a plant
	// control system. UpdateRate is ignored in that mode.
	PeriodicPeriod float64

	// BurstFactor, when > 1, makes the update stream bursty: a
	// Markov-modulated Poisson source whose burst-phase rate is
	// BurstFactor times its quiet-phase rate, holding UpdateRate as
	// the long-run average. BurstQuietMean and BurstOnMean are the
	// mean phase durations in seconds (defaults 4 and 1).
	BurstFactor    float64
	BurstQuietMean float64
	BurstOnMean    float64

	// DiskResident enables the §7 disk-resident extension: view
	// object accesses go through an LRU buffer pool and a miss stalls
	// the CPU for IOSeconds.
	DiskResident bool
	// BufferPoolPages is the buffer pool capacity in pages (one view
	// object per page).
	BufferPoolPages int
	// IOSeconds is the stall per buffer pool miss.
	IOSeconds float64
}

// DefaultParams returns the baseline settings of Tables 1–3.
func DefaultParams() Params {
	return Params{
		UpdateRate:    400,
		PUpdateLow:    0.5,
		MeanUpdateAge: 0.1,
		NLow:          500,
		NHigh:         500,

		TxnRate:       10,
		PTxnLow:       0.5,
		SlackMin:      0.1,
		SlackMax:      1.0,
		ValueLowMean:  1.0,
		ValueHighMean: 2.0,
		ValueLowStd:   0.5,
		ValueHighStd:  0.5,
		ReadsMean:     2.0,
		ReadsStd:      1.0,
		MaxAgeDelta:   7.0,
		CompMean:      0.12,
		CompStd:       0.01,
		PView:         0.0,

		IPS:              50e6,
		XLookup:          4000,
		XUpdate:          20000,
		XSwitch:          0,
		XQueue:           0,
		XScan:            0,
		OSMax:            4000,
		UQMax:            5600,
		FeasibleDeadline: true,
		TxnPreemption:    false,
		Order:            FIFO,

		Staleness: MaxAge,
		OnStale:   StaleIgnore,

		UpdateCPUFraction: 0.2,

		BufferPoolPages: 500,
		IOSeconds:       0.01,
	}
}

// Validate checks the parameter set for internal consistency.
func (p *Params) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(p.UpdateRate >= 0, "UpdateRate %v must be >= 0", p.UpdateRate)
	check(p.PUpdateLow >= 0 && p.PUpdateLow <= 1, "PUpdateLow %v must be in [0,1]", p.PUpdateLow)
	check(p.MeanUpdateAge >= 0, "MeanUpdateAge %v must be >= 0", p.MeanUpdateAge)
	check(p.NLow >= 0, "NLow %d must be >= 0", p.NLow)
	check(p.NHigh >= 0, "NHigh %d must be >= 0", p.NHigh)
	check(p.NLow+p.NHigh > 0, "NLow+NHigh must be positive")
	check(p.TxnRate >= 0, "TxnRate %v must be >= 0", p.TxnRate)
	check(p.PTxnLow >= 0 && p.PTxnLow <= 1, "PTxnLow %v must be in [0,1]", p.PTxnLow)
	check(p.SlackMin >= 0, "SlackMin %v must be >= 0", p.SlackMin)
	check(p.SlackMax >= p.SlackMin, "SlackMax %v must be >= SlackMin %v", p.SlackMax, p.SlackMin)
	check(p.ReadsMean >= 0, "ReadsMean %v must be >= 0", p.ReadsMean)
	check(p.MaxAgeDelta > 0, "MaxAgeDelta %v must be > 0", p.MaxAgeDelta)
	check(p.CompMean > 0, "CompMean %v must be > 0", p.CompMean)
	check(p.PView >= 0 && p.PView <= 1, "PView %v must be in [0,1]", p.PView)
	check(p.IPS > 0, "IPS %v must be > 0", p.IPS)
	check(p.XLookup >= 0, "XLookup %v must be >= 0", p.XLookup)
	check(p.XUpdate >= 0, "XUpdate %v must be >= 0", p.XUpdate)
	check(p.XSwitch >= 0, "XSwitch %v must be >= 0", p.XSwitch)
	check(p.XQueue >= 0, "XQueue %v must be >= 0", p.XQueue)
	check(p.XScan >= 0, "XScan %v must be >= 0", p.XScan)
	check(p.OSMax > 0, "OSMax %d must be > 0", p.OSMax)
	check(p.UQMax > 0, "UQMax %d must be > 0", p.UQMax)
	check(p.UpdateCPUFraction >= 0 && p.UpdateCPUFraction <= 1,
		"UpdateCPUFraction %v must be in [0,1]", p.UpdateCPUFraction)
	check(p.MetricsWarmup >= 0, "MetricsWarmup %v must be >= 0", p.MetricsWarmup)
	check(p.PeriodicPeriod >= 0, "PeriodicPeriod %v must be >= 0", p.PeriodicPeriod)
	check(p.BurstFactor == 0 || p.BurstFactor >= 1, "BurstFactor %v must be 0 (off) or >= 1", p.BurstFactor)
	check(p.BurstQuietMean >= 0, "BurstQuietMean %v must be >= 0", p.BurstQuietMean)
	check(p.BurstOnMean >= 0, "BurstOnMean %v must be >= 0", p.BurstOnMean)
	if p.DiskResident {
		check(p.BufferPoolPages > 0, "BufferPoolPages %d must be > 0 when DiskResident", p.BufferPoolPages)
		check(p.IOSeconds >= 0, "IOSeconds %v must be >= 0", p.IOSeconds)
	}
	return errors.Join(errs...)
}

// UsesMaxAge reports whether the staleness criterion includes a
// maximum-age component, i.e. whether queued updates older than Delta
// are worthless and can be discarded.
func (p *Params) UsesMaxAge() bool {
	return p.Staleness == MaxAge || p.Staleness == CombinedMAUU
}

// NumObjects returns the total view object count Nl + Nh.
func (p *Params) NumObjects() int { return p.NLow + p.NHigh }

// ObjectClass returns the importance of an object ID under the dense
// layout ([0,Nl) low, [Nl,Nl+Nh) high).
func (p *Params) ObjectClass(id ObjectID) Importance {
	if int(id) < p.NLow {
		return Low
	}
	return High
}

// Seconds converts an instruction count to seconds at the configured
// CPU speed.
func (p *Params) Seconds(instructions float64) float64 {
	return instructions / p.IPS
}

// InstallCost returns the instruction cost of installing one update:
// the index lookup plus the update itself (§5.3).
func (p *Params) InstallCost() float64 { return p.XLookup + p.XUpdate }
