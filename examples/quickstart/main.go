// Quickstart: simulate the paper's baseline workload under all four
// scheduling algorithms and print the headline metrics side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sched"
)

func main() {
	fmt.Println("Baseline workload (Tables 1-3): 400 updates/s, 10 txns/s, 100 s simulated")
	fmt.Println()
	fmt.Printf("%-4s  %7s  %7s  %7s  %8s  %8s  %9s\n",
		"alg", "pMD", "AV", "fold_l", "fold_h", "psuccess", "p|nontardy")

	for _, policy := range sched.Policies {
		params := model.DefaultParams()
		result := sched.MustRun(sched.Config{
			Params:   params,
			Policy:   policy,
			Seed:     1,
			Duration: 100,
		})
		fmt.Printf("%-4s  %7.3f  %7.2f  %7.3f  %8.3f  %8.3f  %9.3f\n",
			policy,
			result.PMissedDeadline,
			result.AvgValuePerSecond,
			result.FOldLow,
			result.FOldHigh,
			result.PSuccess,
			result.PSuccessGivenNonTardy,
		)
	}

	fmt.Println()
	fmt.Println("The paper's rule of thumb: On Demand (OD) gives the best overall")
	fmt.Println("balance of transaction timeliness and data freshness.")
}
