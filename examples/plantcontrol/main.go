// Plantcontrol: an industrial control room on the Split Updates
// policy. Critical sensors (reactor core temperatures) are
// high-importance — their updates are installed the moment they
// arrive. Peripheral sensors are low-importance and install in idle
// time. Control transactions read a sensor group under a maximum-age
// bound with the Warn action: the paper's "better to operate with
// stale data than to do nothing at all, as long as a red light goes
// on in the control room".
//
//	go run ./examples/plantcontrol
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/strip"
)

const (
	coreSensors      = 8
	peripheralCount  = 64
	samplePeriod     = 20 * time.Millisecond // periodic sensor reports
	controlPeriod    = 25 * time.Millisecond
	maxAge           = 150 * time.Millisecond
	runFor           = 2 * time.Second
	coreAlarmCelsius = 340.0
)

func main() {
	db, err := strip.Open(strip.Config{
		Policy:  strip.SplitUpdates,
		MaxAge:  maxAge,
		OnStale: strip.Warn,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	var core, peripheral []string
	for i := 0; i < coreSensors; i++ {
		name := fmt.Sprintf("core.temp.%d", i)
		core = append(core, name)
		must(db.DefineView(name, strip.High))
	}
	for i := 0; i < peripheralCount; i++ {
		name := fmt.Sprintf("aux.flow.%d", i)
		peripheral = append(peripheral, name)
		must(db.DefineView(name, strip.Low))
	}

	// Periodic sensor reports (the paper's MA-friendly workload:
	// every object refreshed on a schedule).
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewPCG(1, 2))
		tick := time.NewTicker(samplePeriod)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for _, s := range core {
					db.ApplyUpdate(strip.Update{
						Object: s, Value: 320 + rng.Float64()*25, Generated: time.Now(),
					})
				}
				// Peripheral sensors report in rotation, one batch
				// per tick.
				for i := 0; i < 8; i++ {
					s := peripheral[rng.IntN(len(peripheral))]
					db.ApplyUpdate(strip.Update{
						Object: s, Value: rng.Float64() * 10, Generated: time.Now(),
					})
				}
			}
		}
	}()

	var cycles, alarms, redLights int
	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		res := db.Exec(strip.TxnSpec{
			Name:     "control-cycle",
			Value:    10,
			Deadline: time.Now().Add(controlPeriod),
			Func: func(tx *strip.Tx) error {
				maxTemp := 0.0
				for _, s := range core {
					e, err := tx.Read(s)
					if err != nil {
						return err
					}
					if e.Value > maxTemp {
						maxTemp = e.Value
					}
				}
				tx.Set("max-core-temp", maxTemp)
				if maxTemp > coreAlarmCelsius {
					alarms++
				}
				return nil
			},
		})
		cycles++
		if res.ReadStale {
			// The red light: the cycle ran, but on stale data.
			redLights++
		}
		time.Sleep(controlPeriod)
	}
	close(stop)

	s := db.Stats()
	fmt.Printf("plant ran %v: %d control cycles, %d over-temperature alarms\n",
		runFor, cycles, alarms)
	fmt.Printf("red light (stale data used): %d cycles\n", redLights)
	fmt.Printf("updates: received=%d installed=%d expired=%d\n",
		s.UpdatesReceived, s.UpdatesInstalled, s.UpdatesExpired)
	fmt.Printf("core sensors stayed fresh under SplitUpdates: committed-stale=%d of %d\n",
		s.TxnsCommittedStale, s.TxnsCommitted)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
