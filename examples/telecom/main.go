// Telecom: a call-state server under the Unapplied Update staleness
// criterion — the paper's example of a domain where delivery is fast
// and reliable, so data counts as fresh unless an update is sitting in
// the queue unapplied ("if a call is on-going, we do not want to be
// periodically notified that it is still going on").
//
// Call setup/teardown events stream in; rating transactions read call
// states to compute charges. The example runs the same workload under
// TransactionsFirst and OnDemand and shows OD eliminating stale reads
// without hurting throughput.
//
//	go run ./examples/telecom
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/strip"
)

const (
	lines    = 200
	eventsPS = 800 // call events per second
	runFor   = 1500 * time.Millisecond
)

func lineName(i int) string { return fmt.Sprintf("line.%03d", i) }

type outcome struct {
	rated      int
	staleReads int
	committed  uint64
	installed  uint64
}

func runScenario(policy strip.Policy) outcome {
	db, err := strip.Open(strip.Config{
		Policy:  policy,
		OnStale: strip.Warn, // MaxAge zero selects the UU criterion
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	for i := 0; i < lines; i++ {
		if err := db.DefineView(lineName(i), strip.Low); err != nil {
			panic(err)
		}
	}

	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewPCG(3, 4))
		tick := time.NewTicker(time.Second / eventsPS)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// 1 = call active, 0 = idle; generation is the event
				// time at the switch.
				db.ApplyUpdate(strip.Update{
					Object:    lineName(rng.IntN(lines)),
					Value:     float64(rng.IntN(2)),
					Generated: time.Now(),
				})
			}
		}
	}()

	var out outcome
	rng := rand.New(rand.NewPCG(5, 6))
	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		start := rng.IntN(lines - 8)
		res := db.Exec(strip.TxnSpec{
			Name:     "rate-calls",
			Value:    1,
			Deadline: time.Now().Add(15 * time.Millisecond),
			Func: func(tx *strip.Tx) error {
				active := 0.0
				for i := start; i < start+8; i++ {
					// Rating computation between reads: while it
					// runs, new call events arrive and queue up.
					time.Sleep(500 * time.Microsecond)
					e, err := tx.Read(lineName(i))
					if err != nil {
						return err
					}
					active += e.Value
				}
				tx.Set("active-calls-sample", active)
				return nil
			},
		})
		if res.Committed() {
			out.rated++
			if res.ReadStale {
				out.staleReads++
			}
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	s := db.Stats()
	out.committed = s.TxnsCommitted
	out.installed = s.UpdatesInstalled
	return out
}

func main() {
	fmt.Printf("call-state server, %d lines, %d events/s, UU staleness, %v\n\n",
		lines, eventsPS, runFor)
	for _, policy := range []strip.Policy{strip.TransactionsFirst, strip.OnDemand} {
		o := runScenario(policy)
		fmt.Printf("%s: rated=%d  with-stale-reads=%d  updates-installed=%d\n",
			policy, o.rated, o.staleReads, o.installed)
	}
	fmt.Println("\nOnDemand refreshes a line's state from the queue the moment a")
	fmt.Println("rating transaction touches it, so stale reads all but vanish.")
}
