// Portfolio: derived views over a live feed — the exact scenario §7
// gives as On Demand's blind spot ("a database object X represents
// the average price of stocks in a particular portfolio"). The
// portfolio value is a derived view recomputed whenever a constituent
// installs, so any policy that refreshes a constituent — including
// OD's in-line refresh — refreshes the portfolio too.
//
// The example also exercises the query language, per-view history and
// the write-ahead log for general data.
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"repro/strip"
)

var stocks = []string{"AAPL", "MSFT", "GOOG", "AMZN", "META"}

func main() {
	dir, err := os.MkdirTemp("", "strip-portfolio")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "portfolio.wal")

	runSession(walPath, true)
	fmt.Println()
	// Reopen: the WAL restores the realized P&L from the previous
	// session.
	runSession(walPath, false)
}

func runSession(walPath string, first bool) {
	db, err := strip.Open(strip.Config{
		Policy:       strip.OnDemand,
		MaxAge:       2 * time.Second,
		OnStale:      strip.Warn,
		HistoryDepth: 64,
		WALPath:      walPath,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	for _, s := range stocks {
		if err := db.DefineView(s, strip.High); err != nil {
			panic(err)
		}
	}
	// The portfolio is an equal-weighted average of its constituents.
	err = db.DefineDerived("PORTFOLIO", stocks, func(px []float64) float64 {
		sum := 0.0
		for _, v := range px {
			sum += v
		}
		return sum / float64(len(px))
	})
	if err != nil {
		panic(err)
	}

	// A trigger watches the derived view — the paper's update-driven
	// rule mechanism.
	recomputes := 0
	db.OnInstall("PORTFOLIO", func(e strip.Entry) { recomputes++ })

	// Feed: random walks per stock.
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewPCG(11, uint64(len(walPath))))
		px := map[string]float64{}
		for _, s := range stocks {
			px[s] = 100 + rng.Float64()*100
		}
		tick := time.NewTicker(4 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s := stocks[rng.IntN(len(stocks))]
				px[s] *= 1 + (rng.Float64()-0.5)*0.01
				db.ApplyUpdate(strip.Update{Object: s, Value: px[s], Generated: time.Now()})
			}
		}
	}()

	// Mark-to-market transactions read the derived view and accrue
	// realized P&L into durable general data.
	start := time.Now()
	marks := 0
	for time.Now().Before(start.Add(700 * time.Millisecond)) {
		res := db.Exec(strip.TxnSpec{
			Name:     "mark",
			Value:    1,
			Deadline: time.Now().Add(20 * time.Millisecond),
			Func: func(tx *strip.Tx) error {
				nav, err := tx.Read("PORTFOLIO")
				if err != nil {
					return err
				}
				pnl, _ := tx.Get("realized-pnl")
				tx.Set("realized-pnl", pnl+nav.Value*0.0001)
				tx.Set("last-nav", nav.Value)
				return nil
			},
		})
		if res.Committed() {
			marks++
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)

	// Query the freshest constituents.
	rows, err := db.Query("SELECT * FROM views WHERE NOT stale AND object != 'PORTFOLIO' ORDER BY value DESC LIMIT 3")
	if err != nil {
		panic(err)
	}

	var pnl float64
	db.Exec(strip.TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *strip.Tx) error {
			pnl, _ = tx.Get("realized-pnl")
			return nil
		},
	})

	nav, _ := db.Peek("PORTFOLIO")
	hist, _ := db.History("PORTFOLIO")

	session := "fresh session"
	if !first {
		session = "reopened from WAL"
	}
	fmt.Printf("%s: NAV=%.2f (recomputed %d times, %d retained versions)\n",
		session, nav.Value, recomputes, len(hist))
	fmt.Printf("  marks committed: %d, realized P&L carried in WAL: %.4f\n", marks, pnl)
	fmt.Printf("  top fresh constituents:")
	for _, r := range rows {
		fmt.Printf("  %s=%.2f", r.Object, r.Value)
	}
	fmt.Println()
}
