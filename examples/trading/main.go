// Trading: the paper's motivating application — program trading on a
// live market feed. A synthetic Reuters-style feed updates currency
// prices at two venues; arbitrage transactions with firm deadlines
// compare venue prices and trade when they diverge. The database runs
// the On Demand policy with a maximum-age staleness bound, so a trader
// never acts on a quote older than one second when a fresher one is
// already queued.
//
//	go run ./examples/trading
package main

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/strip"
)

const (
	venues      = 2
	instruments = 40
	feedRate    = 500 // updates/second, the paper's peak Reuters rate
	runFor      = 2 * time.Second
)

func symbol(inst, venue int) string {
	return fmt.Sprintf("FX%02d.V%d", inst, venue)
}

func main() {
	db, err := strip.Open(strip.Config{
		Policy:   strip.OnDemand,
		MaxAge:   time.Second,
		OnStale:  strip.Abort, // never trade on stale quotes
		Coalesce: true,        // only the newest quote per symbol matters
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	for i := 0; i < instruments; i++ {
		for v := 0; v < venues; v++ {
			if err := db.DefineView(symbol(i, v), strip.High); err != nil {
				panic(err)
			}
		}
	}

	// Synthetic feed: a random walk per instrument, with venue prices
	// wandering slightly apart — the arbitrage opportunity.
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewPCG(7, 7))
		px := make([]float64, instruments)
		for i := range px {
			px[i] = 100 + rng.Float64()*50
		}
		tick := time.NewTicker(time.Second / feedRate)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				i := rng.IntN(instruments)
				v := rng.IntN(venues)
				px[i] *= 1 + (rng.Float64()-0.5)*0.004
				quote := px[i] * (1 + (rng.Float64()-0.5)*0.002)
				db.ApplyUpdate(strip.Update{
					Object:    symbol(i, v),
					Value:     quote,
					Generated: time.Now(),
				})
			}
		}
	}()

	// Trading loop: scan instruments, fire an arbitrage transaction
	// when the two venues disagree by more than 10 bps.
	var trades, aborted, profitBps int
	deadline := time.Now().Add(runFor)
	rng := rand.New(rand.NewPCG(9, 9))
	for time.Now().Before(deadline) {
		inst := rng.IntN(instruments)
		res := db.Exec(strip.TxnSpec{
			Name:     "arb",
			Value:    2.0,
			Deadline: time.Now().Add(20 * time.Millisecond),
			Estimate: time.Millisecond,
			Func: func(tx *strip.Tx) error {
				a, err := tx.Read(symbol(inst, 0))
				if err != nil {
					return err
				}
				b, err := tx.Read(symbol(inst, 1))
				if err != nil {
					return err
				}
				if a.Value == 0 || b.Value == 0 {
					return nil // venue not quoted yet
				}
				spreadBps := math.Abs(a.Value-b.Value) / a.Value * 10000
				if spreadBps > 10 {
					key := fmt.Sprintf("position.%d", inst)
					pos, _ := tx.Get(key)
					tx.Set(key, pos+1)
					tx.Set("last-spread-bps", spreadBps)
					profitBps += int(spreadBps)
					trades++
				}
				return nil
			},
		})
		if res.State == strip.AbortedStale || res.State == strip.AbortedDeadline {
			aborted++
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)

	s := db.Stats()
	fmt.Printf("ran %v against a %d-symbol feed at %d updates/s\n",
		runFor, instruments*venues, feedRate)
	fmt.Printf("updates: received=%d installed=%d coalesced=%d\n",
		s.UpdatesReceived, s.UpdatesInstalled, s.UpdatesSkipped)
	fmt.Printf("transactions: committed=%d aborted(stale|deadline)=%d\n",
		s.TxnsCommitted, aborted)
	fmt.Printf("trades executed: %d, captured spread: %d bps total\n", trades, profitBps)
}
