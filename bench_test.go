// Package repro's benchmark harness regenerates every table and
// figure of the paper's evaluation (§6) and benchmarks the building
// blocks.
//
// Figure benches: each BenchmarkFigureNN iteration runs that figure's
// full parameter sweep (all four algorithms at every sweep point) at a
// reduced horizon, and reports a headline metric from the sweep via
// b.ReportMetric so the paper's qualitative result is visible straight
// from the benchmark output. For publication-scale numbers run
//
//	go run ./cmd/stripexp -all -duration 1000 -seeds 3
//
// Micro benches cover the simulator's hot paths: the event kernel, the
// generation-ordered update queue, and whole simulation runs per
// policy (reported as simulated-seconds-per-wall-second).
package repro

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/uqueue"
	"repro/strip"
	"repro/strip/repl"
)

// benchOpts is the reduced horizon used by the figure benches.
var benchOpts = experiment.Options{Duration: 20, Seeds: []uint64{1}}

// runFigure executes one figure sweep per iteration and reports the
// named headline metric (averaged over the sweep for one policy).
func runFigure(b *testing.B, id, policy, metric string) {
	b.Helper()
	b.ReportAllocs()
	def, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := def.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		series := tab.Series(policy, metric)
		if len(series) == 0 {
			b.Fatalf("no series for %s/%s", policy, metric)
		}
		sum := 0.0
		for _, v := range series {
			sum += v
		}
		last = sum / float64(len(series))
	}
	b.ReportMetric(last, policy+":"+metric)
}

func BenchmarkFigure03(b *testing.B)  { runFigure(b, "fig3", "UF", "rho_u") }
func BenchmarkFigure04(b *testing.B)  { runFigure(b, "fig4", "TF", "AV") }
func BenchmarkFigure05(b *testing.B)  { runFigure(b, "fig5", "UF", "fold_l") }
func BenchmarkFigure06(b *testing.B)  { runFigure(b, "fig6", "OD", "psuccess") }
func BenchmarkFigure07a(b *testing.B) { runFigure(b, "fig7a", "UF", "AV") }
func BenchmarkFigure07b(b *testing.B) { runFigure(b, "fig7b", "OD", "AV") }
func BenchmarkFigure08(b *testing.B)  { runFigure(b, "fig8", "OD", "AV") }
func BenchmarkFigure09(b *testing.B)  { runFigure(b, "fig9", "OD", "psuccess") }
func BenchmarkFigure10a(b *testing.B) { runFigure(b, "fig10a", "OD", "AV") }
func BenchmarkFigure10b(b *testing.B) { runFigure(b, "fig10b", "OD", "AV") }
func BenchmarkFigure11(b *testing.B)  { runFigure(b, "fig11", "TF", "fold_l") }
func BenchmarkFigure12a(b *testing.B) { runFigure(b, "fig12a", "TF", "fold_h") }
func BenchmarkFigure12b(b *testing.B) { runFigure(b, "fig12b", "TF", "fold_h") }
func BenchmarkFigure13a(b *testing.B) { runFigure(b, "fig13a", "OD", "AV") }
func BenchmarkFigure13b(b *testing.B) { runFigure(b, "fig13b", "TF", "AV") }
func BenchmarkFigure14(b *testing.B)  { runFigure(b, "fig14", "OD", "psuccess") }
func BenchmarkFigure15(b *testing.B)  { runFigure(b, "fig15", "TF", "AV") }
func BenchmarkFigure16(b *testing.B)  { runFigure(b, "fig16", "OD", "psuccess") }

// Ablation benches for the implemented future-work features.

func BenchmarkAblationCoalescedQueue(b *testing.B) {
	for _, coalesce := range []bool{false, true} {
		name := "baseline-queue"
		if coalesce {
			name = "coalesced-queue"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				p := model.DefaultParams()
				p.TxnRate = 15
				p.CoalesceQueue = coalesce
				r := sched.MustRun(sched.Config{Params: p, Policy: sched.OD, Seed: 1, Duration: 20})
				last = r.PSuccess
			}
			b.ReportMetric(last, "psuccess")
		})
	}
}

func BenchmarkAblationPartitionedQueues(b *testing.B) {
	for _, part := range []bool{false, true} {
		name := "merged-queue"
		if part {
			name = "partitioned-queue"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				p := model.DefaultParams()
				p.TxnRate = 15
				p.PartitionedQueues = part
				r := sched.MustRun(sched.Config{Params: p, Policy: sched.TF, Seed: 1, Duration: 20})
				last = r.FOldHigh
			}
			b.ReportMetric(last, "fold_h")
		})
	}
}

func BenchmarkAblationFixedFraction(b *testing.B) {
	for _, frac := range []float64{0.1, 0.2, 0.3} {
		b.Run(fmt.Sprintf("fraction-%.1f", frac), func(b *testing.B) {
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				p := model.DefaultParams()
				p.TxnRate = 15
				p.UpdateCPUFraction = frac
				r := sched.MustRun(sched.Config{Params: p, Policy: sched.FC, Seed: 1, Duration: 20})
				last = r.PSuccess
			}
			b.ReportMetric(last, "psuccess")
		})
	}
}

// Whole-run throughput per policy: how many simulated seconds of the
// baseline workload one wall-clock second buys.

func BenchmarkSimulationRun(b *testing.B) {
	for _, pol := range sched.AllPolicies {
		b.Run(pol.String(), func(b *testing.B) {
			b.ReportAllocs()
			const horizon = 10.0
			for i := 0; i < b.N; i++ {
				p := model.DefaultParams()
				sched.MustRun(sched.Config{Params: p, Policy: pol, Seed: uint64(i + 1), Duration: horizon})
			}
			b.ReportMetric(horizon*float64(b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
		})
	}
}

// Micro benches: the simulator's hot data structures.

func BenchmarkEventKernel(b *testing.B) {
	s := sim.New()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.After(1, tick)
	}
	s.After(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(float64(b.N))
	if count < b.N-1 {
		b.Fatalf("ran %d events, want about %d", count, b.N)
	}
}

func BenchmarkGenQueueInsertPop(b *testing.B) {
	q := uqueue.NewGenQueue(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Insert(&model.Update{Seq: uint64(i), Object: model.ObjectID(i % 1000), GenTime: float64(i % 977)})
		if q.Len() > 5600 {
			q.PopOldest()
		}
	}
}

func BenchmarkGenQueueTakeFor(b *testing.B) {
	q := uqueue.NewGenQueue(0, 1)
	for i := 0; i < 5600; i++ {
		q.Insert(&model.Update{Seq: uint64(i), Object: model.ObjectID(i % 1000), GenTime: float64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := model.ObjectID(i % 1000)
		newest, superseded := q.TakeFor(obj)
		if newest != nil {
			// Put them back so the queue stays populated.
			for j := 0; j <= len(superseded); j++ {
				q.Insert(&model.Update{Seq: newest.Seq, Object: obj, GenTime: newest.GenTime})
			}
		}
	}
}

func BenchmarkCoalescedQueueInsert(b *testing.B) {
	q := uqueue.NewCoalescedQueue(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Insert(&model.Update{Seq: uint64(i), Object: model.ObjectID(i % 1000), GenTime: float64(i)})
	}
}

func BenchmarkAblationDiskResident(b *testing.B) {
	for _, pages := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("pages-%d", pages), func(b *testing.B) {
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				p := model.DefaultParams()
				p.DiskResident = true
				p.IOSeconds = 0.01
				p.UpdateRate = 40
				p.TxnRate = 2
				p.BufferPoolPages = pages
				r := sched.MustRun(sched.Config{Params: p, Policy: sched.TF, Seed: 1, Duration: 20})
				last = r.BufferHitRatio
			}
			b.ReportMetric(last, "hit-ratio")
		})
	}
}

func BenchmarkAblationBurstyStream(b *testing.B) {
	for _, factor := range []float64{1, 4, 8} {
		b.Run(fmt.Sprintf("burst-%.0fx", factor), func(b *testing.B) {
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				p := model.DefaultParams()
				p.TxnRate = 8
				p.BurstFactor = factor
				r := sched.MustRun(sched.Config{Params: p, Policy: sched.TF, Seed: 1, Duration: 20})
				last = r.FOldLow
			}
			b.ReportMetric(last, "fold_l")
		})
	}
}

// Wall-clock library benchmarks.

func BenchmarkStripExec(b *testing.B) {
	db, err := strip.Open(strip.Config{Policy: strip.OnDemand})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineView("px", strip.High); err != nil {
		b.Fatal(err)
	}
	db.ApplyUpdate(strip.Update{Object: "px", Value: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := db.Exec(strip.TxnSpec{
			Value:    1,
			Deadline: time.Now().Add(time.Second),
			Func: func(tx *strip.Tx) error {
				_, err := tx.Read("px")
				return err
			},
		})
		if !res.Committed() {
			b.Fatalf("txn failed: %+v", res)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "txns/s")
}

func BenchmarkStripIngest(b *testing.B) {
	db, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst, IngestBuffer: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const nViews = 1000
	for i := 0; i < nViews; i++ {
		db.DefineView(fmt.Sprintf("v%03d", i), strip.Low)
	}
	names := make([]string, nViews)
	for i := range names {
		names[i] = fmt.Sprintf("v%03d", i)
	}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ApplyUpdate(strip.Update{
			Object:    names[i%nViews],
			Value:     float64(i),
			Generated: now.Add(time.Duration(i)),
		})
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkStripInstallLatency measures the single-update install
// round trip — ApplyUpdate through the ingest buffer and scheduler to
// watcher delivery — in lockstep, so ns/op is the end-to-end install
// latency of an uncontended update.
func BenchmarkStripInstallLatency(b *testing.B) {
	db, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineView("px", strip.High); err != nil {
		b.Fatal(err)
	}
	ch, cancel, err := db.Watch("px", 16)
	if err != nil {
		b.Fatal(err)
	}
	defer cancel()
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ApplyUpdate(strip.Update{Object: "px", Value: float64(i), Generated: now.Add(time.Duration(i))})
		<-ch
	}
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N), "us-install-latency")
}

func BenchmarkStripQuery(b *testing.B) {
	db, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("v%03d", i)
		db.DefineView(name, strip.Low)
		db.ApplyUpdate(strip.Update{Object: name, Value: float64(i)})
	}
	time.Sleep(50 * time.Millisecond) // let installs drain
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Query("SELECT * FROM views WHERE value > 500 ORDER BY value DESC LIMIT 10")
		if err != nil || len(rows) != 10 {
			b.Fatalf("query: %v (%d rows)", err, len(rows))
		}
	}
}

// BenchmarkReplFrameEncode measures the replication codec's encode
// path on a representative record-view update.
func BenchmarkReplFrameEncode(b *testing.B) {
	ev := strip.ReplEvent{
		Seq: 1, Kind: strip.ReplUpdate, Object: "DEM/USD.LON",
		Importance: strip.High, Value: 1.6612,
		Generated: time.Unix(0, 1700000000000000001),
		Fields: []strip.KeyValue{
			{Key: "ask", Value: 1.6624}, {Key: "bid", Value: 1.66},
			{Key: "volume", Value: 1e6},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i + 1)
		if _, err := repl.EncodeEvent(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkReplFrameDecode measures the decode path, CRC included.
func BenchmarkReplFrameDecode(b *testing.B) {
	payload, err := repl.EncodeEvent(strip.ReplEvent{
		Seq: 1, Kind: strip.ReplUpdate, Object: "DEM/USD.LON",
		Importance: strip.High, Value: 1.6612,
		Generated: time.Unix(0, 1700000000000000001),
		Fields: []strip.KeyValue{
			{Key: "ask", Value: 1.6624}, {Key: "bid", Value: 1.66},
			{Key: "volume", Value: 1e6},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repl.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkReplIngest measures end-to-end replica ingest throughput:
// updates applied on a primary, framed, streamed over loopback TCP,
// decoded and installed through the replica's scheduler.
func BenchmarkReplIngest(b *testing.B) {
	primary, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst, IngestBuffer: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	const nViews = 256
	for i := 0; i < nViews; i++ {
		primary.DefineView(fmt.Sprintf("v%03d", i), strip.Low)
	}
	p := repl.NewPrimary(primary, repl.PrimaryConfig{RingFrames: 1 << 16})
	defer p.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go p.Serve(l)

	replica, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst, IngestBuffer: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer replica.Close()
	r, err := repl.StartReplica(replica, repl.ReplicaConfig{Addr: l.Addr().String()})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()

	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		primary.ApplyUpdate(strip.Update{
			Object:    fmt.Sprintf("v%03d", i%nViews),
			Value:     float64(i),
			Generated: now.Add(time.Duration(i)),
		})
	}
	target := primary.Sequence()
	for r.LastSeq() < target {
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(target)/b.Elapsed().Seconds(), "replicated/s")
}
